#include "markov/dtmc.h"

#include <cmath>

#include "util/error.h"

namespace rcbr::markov {

namespace {

constexpr double kRowSumTolerance = 1e-9;

}  // namespace

Dtmc::Dtmc(Matrix transition) : p_(std::move(transition)) {
  Require(p_.rows() == p_.cols(), "Dtmc: transition matrix must be square");
  for (std::size_t r = 0; r < p_.rows(); ++r) {
    double row_sum = 0;
    for (std::size_t c = 0; c < p_.cols(); ++c) {
      Require(p_.at(r, c) >= 0, "Dtmc: negative transition probability");
      row_sum += p_.at(r, c);
    }
    Require(std::abs(row_sum - 1.0) <= kRowSumTolerance,
            "Dtmc: rows must sum to 1");
  }
}

bool Dtmc::IsIrreducible() const {
  const std::size_t n = state_count();
  // Strong connectivity via forward and backward reachability from state 0.
  auto reachable = [&](bool backward) {
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> stack = {0};
    seen[0] = true;
    while (!stack.empty()) {
      const std::size_t s = stack.back();
      stack.pop_back();
      for (std::size_t t = 0; t < n; ++t) {
        const double p = backward ? p_.at(t, s) : p_.at(s, t);
        if (p > 0 && !seen[t]) {
          seen[t] = true;
          stack.push_back(t);
        }
      }
    }
    for (bool b : seen) {
      if (!b) return false;
    }
    return true;
  };
  return reachable(false) && reachable(true);
}

std::vector<double> Dtmc::StationaryDistribution() const {
  if (!stationary_cache_.empty()) return stationary_cache_;
  Require(IsIrreducible(), "Dtmc::StationaryDistribution: reducible chain");
  const std::size_t n = state_count();
  // Solve (P^T - I) pi = 0 with the last equation replaced by sum(pi) = 1.
  Matrix a = p_.Transpose();
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) -= 1.0;
  for (std::size_t c = 0; c < n; ++c) a.at(n - 1, c) = 1.0;
  std::vector<double> b(n, 0.0);
  b[n - 1] = 1.0;
  std::vector<double> pi = Solve(std::move(a), std::move(b));
  for (double& x : pi) x = std::max(0.0, x);  // clean tiny negatives
  double total = 0;
  for (double x : pi) total += x;
  for (double& x : pi) x /= total;
  stationary_cache_ = pi;
  return pi;
}

std::size_t Dtmc::Step(std::size_t state, rcbr::Rng& rng) const {
  Require(state < state_count(), "Dtmc::Step: state out of range");
  double u = rng.Uniform();
  for (std::size_t t = 0; t < state_count(); ++t) {
    u -= p_.at(state, t);
    if (u < 0) return t;
  }
  // Floating point slack: return the last state with positive probability.
  for (std::size_t t = state_count(); t-- > 0;) {
    if (p_.at(state, t) > 0) return t;
  }
  return state;
}

std::vector<std::size_t> Dtmc::Simulate(std::size_t initial,
                                        std::size_t steps,
                                        rcbr::Rng& rng) const {
  Require(initial < state_count(), "Dtmc::Simulate: state out of range");
  std::vector<std::size_t> path;
  path.reserve(steps);
  std::size_t s = initial;
  for (std::size_t i = 0; i < steps; ++i) {
    path.push_back(s);
    s = Step(s, rng);
  }
  return path;
}

std::size_t Dtmc::SampleStationary(rcbr::Rng& rng) const {
  const std::vector<double> pi = StationaryDistribution();
  return rng.Categorical(pi);
}

Dtmc MakeOnOffChain(double p_on, double p_off) {
  Require(p_on > 0 && p_on <= 1 && p_off > 0 && p_off <= 1,
          "MakeOnOffChain: probabilities must be in (0,1]");
  Matrix p(2, 2);
  p.at(0, 0) = 1 - p_on;
  p.at(0, 1) = p_on;
  p.at(1, 0) = p_off;
  p.at(1, 1) = 1 - p_off;
  return Dtmc(std::move(p));
}

Dtmc MakeBirthDeathChain(std::size_t n, double up, double down) {
  Require(n >= 2, "MakeBirthDeathChain: need at least two states");
  Require(up > 0 && down > 0 && up + down <= 1,
          "MakeBirthDeathChain: need up, down > 0 and up + down <= 1");
  Matrix p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double stay = 1.0;
    if (i + 1 < n) {
      p.at(i, i + 1) = up;
      stay -= up;
    }
    if (i > 0) {
      p.at(i, i - 1) = down;
      stay -= down;
    }
    p.at(i, i) = stay;
  }
  return Dtmc(std::move(p));
}

}  // namespace rcbr::markov
