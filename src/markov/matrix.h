// Small dense matrices.
//
// The Markov-chain and large-deviations code needs just enough linear
// algebra for chains with tens of states: row-major dense storage, linear
// solves (stationary distributions), and the Perron (spectral) radius of a
// nonnegative matrix (equivalent-bandwidth computation).
#pragma once

#include <cstddef>
#include <vector>

namespace rcbr::markov {

class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized rows x cols matrix.
  Matrix(std::size_t rows, std::size_t cols);
  /// From nested initializer data; all rows must have equal length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& other) const;

  /// y = M x for a vector x of length cols().
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// x^T M for a row vector of length rows().
  std::vector<double> ApplyLeft(const std::vector<double>& x) const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws rcbr::Error if A is (numerically) singular.
std::vector<double> Solve(Matrix a, std::vector<double> b);

/// Perron root (spectral radius) of an elementwise-nonnegative matrix via
/// power iteration. Requires a square matrix with at least one positive
/// entry per row reachable class; converges for the primitive matrices
/// produced by irreducible aperiodic chains.
double PerronRoot(const Matrix& m, int max_iterations = 10000,
                  double tolerance = 1e-12);

}  // namespace rcbr::markov
