// Fitting the multiple-time-scale model to a trace.
//
// Section V-A analyzes RCBR through a Markov-modulated model with fast
// subchains and rare inter-subchain transitions (Fig. 4). This module
// closes the loop: it estimates such a model *from* a frame trace — scene
// levels from the smoothed rate's quantiles, per-scene fast fluctuation
// from the within-scene variance, escape probabilities from the measured
// scene-change rate and occupancies — so the large-deviations machinery
// (equivalent bandwidth, Chernoff admission) can be applied to real
// material, not just to hand-built chains.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/multi_timescale.h"
#include "trace/frame_trace.h"

namespace rcbr::markov {

struct FitOptions {
  /// Smoothing window (frames) separating the scene scale from the GOP
  /// scale; at least one GOP.
  std::int64_t smoothing_frames = 24;
  /// Number of scene-rate levels (subchains) to fit.
  std::size_t subchain_count = 3;
  /// Fast-chain mixing probability inside each subchain.
  double fast_mixing = 0.4;
};

struct FittedModel {
  MultiTimescaleSource source;
  /// Scene level of each subchain, bits per slot.
  std::vector<double> level_bits_per_slot;
  /// Fraction of frames assigned to each subchain.
  std::vector<double> occupancy;
  /// Fitted per-subchain escape probabilities.
  std::vector<double> escape;
  /// Mean escape probability (the model's epsilon).
  double epsilon = 0;
};

/// Fits a multiple-time-scale source to `trace`. Throws rcbr::Error when
/// the trace is too short or too flat to separate `subchain_count` levels
/// (distinct quantile levels are required).
FittedModel FitMultiTimescale(const trace::FrameTrace& trace,
                              const FitOptions& options = {});

}  // namespace rcbr::markov
