// Markov-modulated rate sources.
//
// "Let a(t) be the amount of data generated per time-slot ... modulated by
// an irreducible finite-state Markov chain such that the value of a(t) is
// a function of the current state" (Sec. V-A). RateSource couples a Dtmc
// with a per-state data amount and generates slotted workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/dtmc.h"
#include "util/rng.h"

namespace rcbr::markov {

class RateSource {
 public:
  /// `bits_per_slot[i]` is the data generated per slot while in state i.
  RateSource(Dtmc chain, std::vector<double> bits_per_slot);

  const Dtmc& chain() const { return chain_; }
  const std::vector<double>& bits_per_slot() const { return bits_; }
  std::size_t state_count() const { return chain_.state_count(); }

  /// Stationary mean data per slot.
  double MeanBitsPerSlot() const;
  /// Largest per-slot amount.
  double PeakBitsPerSlot() const;

  /// Generates `slots` slot workloads starting from the stationary
  /// distribution.
  std::vector<double> Generate(std::size_t slots, rcbr::Rng& rng) const;

  /// Generates starting from a given state; also reports visited states if
  /// `states_out` is non-null.
  std::vector<double> GenerateFrom(std::size_t initial, std::size_t slots,
                                   rcbr::Rng& rng,
                                   std::vector<std::size_t>* states_out =
                                       nullptr) const;

 private:
  Dtmc chain_;
  std::vector<double> bits_;
};

}  // namespace rcbr::markov
