#include "markov/fitting.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/stats.h"

namespace rcbr::markov {

FittedModel FitMultiTimescale(const trace::FrameTrace& trace,
                              const FitOptions& options) {
  Require(options.smoothing_frames >= 1, "FitMultiTimescale: bad window");
  Require(options.subchain_count >= 2,
          "FitMultiTimescale: need at least two subchains");
  Require(options.fast_mixing > 0 && options.fast_mixing <= 0.5,
          "FitMultiTimescale: fast mixing must be in (0, 0.5]");
  const auto n = trace.frame_count();
  Require(n >= options.smoothing_frames * 10,
          "FitMultiTimescale: trace too short for the smoothing window");

  // 1. Scene-scale rate: trailing moving average of frame sizes.
  const std::int64_t w = options.smoothing_frames;
  std::vector<double> smooth(static_cast<std::size_t>(n));
  double acc = 0;
  for (std::int64_t t = 0; t < n; ++t) {
    acc += trace.bits(t);
    if (t >= w) acc -= trace.bits(t - w);
    smooth[static_cast<std::size_t>(t)] =
        acc / static_cast<double>(std::min(t + 1, w));
  }

  // 2. Level boundaries at equally spaced quantiles of the smoothed rate.
  const std::size_t k = options.subchain_count;
  std::vector<double> sorted = smooth;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> boundaries;  // k-1 inner boundaries
  for (std::size_t j = 1; j < k; ++j) {
    boundaries.push_back(
        Quantile(sorted, static_cast<double>(j) / static_cast<double>(k)));
  }
  for (std::size_t j = 1; j < boundaries.size(); ++j) {
    Require(boundaries[j] > boundaries[j - 1],
            "FitMultiTimescale: trace too flat to separate levels");
  }

  // 3. Assign frames to levels; gather per-level statistics of the *raw*
  //    frame sizes (fast fluctuation around the scene rate).
  auto level_of = [&boundaries](double rate) {
    std::size_t level = 0;
    while (level < boundaries.size() && rate > boundaries[level]) ++level;
    return level;
  };
  std::vector<OnlineStats> per_level(k);
  std::vector<std::int64_t> changes(k, 0);
  std::vector<std::int64_t> visits(k, 0);
  std::size_t prev_level = level_of(smooth[0]);
  for (std::int64_t t = 0; t < n; ++t) {
    const std::size_t level = level_of(smooth[static_cast<std::size_t>(t)]);
    per_level[level].Add(trace.bits(t));
    ++visits[level];
    if (t > 0 && level != prev_level) ++changes[prev_level];
    prev_level = level;
  }

  FittedModel fitted{
      // Placeholder; replaced below once the subchains are built.
      MakeThreeSubchainSource(1.0, 0.5),
      {},
      {},
      {},
      0.0};
  std::vector<Subchain> subchains;
  std::vector<double> escape;
  for (std::size_t level = 0; level < k; ++level) {
    Require(per_level[level].count() > 0,
            "FitMultiTimescale: empty level (degenerate quantiles)");
    const double mean = per_level[level].mean();
    const double sigma = per_level[level].stddev();
    // Two-state fast chain reproducing the within-level mean and spread.
    const double lo = std::max(mean - sigma, 0.0);
    const double hi = mean + (mean - lo);  // keep the mean exact
    subchains.push_back({MakeOnOffChain(options.fast_mixing,
                                        options.fast_mixing),
                         {lo, hi}});
    // Escape probability: scene changes per slot spent at this level,
    // clamped into (0, 0.5] to stay a meaningful slow scale.
    const double eps =
        std::clamp(static_cast<double>(changes[level]) /
                       std::max<double>(1.0, static_cast<double>(
                                                 visits[level])),
                   1e-6, 0.5);
    escape.push_back(eps);
    fitted.level_bits_per_slot.push_back(mean);
    fitted.occupancy.push_back(static_cast<double>(visits[level]) /
                               static_cast<double>(n));
  }
  fitted.escape = escape;
  double eps_sum = 0;
  for (double e : escape) eps_sum += e;
  fitted.epsilon = eps_sum / static_cast<double>(k);
  fitted.source = MultiTimescaleSource(std::move(subchains),
                                       std::move(escape));
  return fitted;
}

}  // namespace rcbr::markov
