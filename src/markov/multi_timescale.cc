#include "markov/multi_timescale.h"

#include <numeric>

#include "util/error.h"

namespace rcbr::markov {

MultiTimescaleSource::MultiTimescaleSource(std::vector<Subchain> subchains,
                                           double epsilon) {
  // Read the size before moving: uniform escape for every subchain.
  const std::size_t count = subchains.size();
  *this = MultiTimescaleSource(std::move(subchains),
                               std::vector<double>(count, epsilon));
}

MultiTimescaleSource::MultiTimescaleSource(
    std::vector<Subchain> subchains,
    std::vector<double> escape_probabilities)
    : subchains_(std::move(subchains)),
      escape_(std::move(escape_probabilities)) {
  Require(subchains_.size() >= 2,
          "MultiTimescaleSource: need at least two subchains");
  Require(escape_.size() == subchains_.size(),
          "MultiTimescaleSource: one escape probability per subchain");
  double eps_sum = 0;
  for (double e : escape_) {
    Require(e > 0 && e < 1,
            "MultiTimescaleSource: escape probabilities must be in (0,1)");
    eps_sum += e;
  }
  epsilon_ = eps_sum / static_cast<double>(escape_.size());
  for (const Subchain& sc : subchains_) {
    Require(sc.bits_per_slot.size() == sc.chain.state_count(),
            "MultiTimescaleSource: rate/state mismatch in subchain");
  }

  // Composite state layout: subchain k occupies a contiguous block.
  offsets_.resize(subchains_.size());
  std::size_t total = 0;
  for (std::size_t k = 0; k < subchains_.size(); ++k) {
    offsets_[k] = total;
    total += subchains_[k].chain.state_count();
  }
  owner_.resize(total);
  for (std::size_t k = 0; k < subchains_.size(); ++k) {
    for (std::size_t i = 0; i < subchains_[k].chain.state_count(); ++i) {
      owner_[offsets_[k] + i] = k;
    }
  }

  // Entry distributions: stationary distribution of each subchain.
  std::vector<std::vector<double>> entry(subchains_.size());
  for (std::size_t k = 0; k < subchains_.size(); ++k) {
    entry[k] = subchains_[k].chain.StationaryDistribution();
  }

  Matrix p(total, total);
  std::vector<double> bits(total);
  for (std::size_t k = 0; k < subchains_.size(); ++k) {
    const Subchain& sc = subchains_[k];
    const double escape = escape_[k];
    const double switch_share =
        escape / static_cast<double>(subchains_.size() - 1);
    for (std::size_t i = 0; i < sc.chain.state_count(); ++i) {
      const std::size_t s = offsets_[k] + i;
      bits[s] = sc.bits_per_slot[i];
      // Fast transitions, scaled down by this subchain's escape mass.
      for (std::size_t j = 0; j < sc.chain.state_count(); ++j) {
        p.at(s, offsets_[k] + j) = (1.0 - escape) * sc.chain.prob(i, j);
      }
      // Rare transitions to the other subchains.
      for (std::size_t l = 0; l < subchains_.size(); ++l) {
        if (l == k) continue;
        for (std::size_t j = 0; j < subchains_[l].chain.state_count(); ++j) {
          p.at(s, offsets_[l] + j) += switch_share * entry[l][j];
        }
      }
    }
  }
  composite_ = std::make_unique<RateSource>(Dtmc(std::move(p)),
                                            std::move(bits));
}

RateSource MultiTimescaleSource::SubchainSource(std::size_t k) const {
  Require(k < subchains_.size(),
          "MultiTimescaleSource::SubchainSource: index out of range");
  return RateSource(subchains_[k].chain, subchains_[k].bits_per_slot);
}

std::size_t MultiTimescaleSource::SubchainOfState(std::size_t s) const {
  Require(s < owner_.size(),
          "MultiTimescaleSource::SubchainOfState: state out of range");
  return owner_[s];
}

std::vector<double> MultiTimescaleSource::SubchainStationary() const {
  const std::vector<double> pi =
      composite_->chain().StationaryDistribution();
  std::vector<double> per_subchain(subchains_.size(), 0.0);
  for (std::size_t s = 0; s < pi.size(); ++s) {
    per_subchain[owner_[s]] += pi[s];
  }
  return per_subchain;
}

std::vector<double> MultiTimescaleSource::SubchainMeanBitsPerSlot() const {
  std::vector<double> means(subchains_.size());
  for (std::size_t k = 0; k < subchains_.size(); ++k) {
    means[k] = SubchainSource(k).MeanBitsPerSlot();
  }
  return means;
}

MultiTimescaleSource MakeThreeSubchainSource(double mean_bits_per_slot,
                                             double epsilon) {
  Require(mean_bits_per_slot > 0,
          "MakeThreeSubchainSource: mean must be positive");
  // Three activity levels; each subchain is a two-state fast chain that
  // fluctuates +-30% around the scene rate with fast mixing.
  // Scene rates are chosen so the stationary mean over scenes is ~1 when
  // each subchain is equally likely (uniform switching => uniform slow
  // stationary distribution).
  const double scene_rates[3] = {0.4, 0.9, 1.7};  // sums/3 = 1.0
  std::vector<Subchain> subchains;
  subchains.reserve(3);
  for (double scene : scene_rates) {
    Dtmc fast = MakeOnOffChain(0.4, 0.4);  // symmetric, mixes in ~2 slots
    std::vector<double> bits = {scene * 0.7 * mean_bits_per_slot,
                                scene * 1.3 * mean_bits_per_slot};
    subchains.push_back({std::move(fast), std::move(bits)});
  }
  return MultiTimescaleSource(std::move(subchains), epsilon);
}

}  // namespace rcbr::markov
