// User interactivity (Sec. VI).
//
// "Even for stored video, where the empirical bandwidth distribution
// could be computed in advance, user interactivity (fast forward, pause,
// etc.) reduces the accuracy of this descriptor." This module models a
// viewer driving VCR controls over a stored stream, both at the frame
// level (what the encoder emits) and at the schedule level (what the
// RCBR reservation looks like), so the admission experiments can compare
// a-priori descriptors against measurement-based ones under interactive
// use.
#pragma once

#include <cstdint>

#include "trace/frame_trace.h"
#include "util/piecewise.h"
#include "util/rng.h"

namespace rcbr::trace {

struct InteractivityModel {
  /// Poisson rate of pause events per second of viewing.
  double pause_rate_per_s = 1.0 / 300.0;
  double pause_mean_seconds = 30.0;

  /// Poisson rate of fast-forward events per second of viewing.
  double ff_rate_per_s = 1.0 / 600.0;
  /// Content seconds skipped per fast-forward event (mean, exponential).
  double ff_mean_content_seconds = 60.0;
  /// Playback speed during fast-forward: content frames consumed per
  /// output frame. During FF only the largest frame of each group is
  /// emitted (the I frame a real player would show).
  std::int64_t ff_speed = 8;
};

/// Simulates one interactive viewing of `movie`: the output trace is what
/// the network sees (zero-size frames while paused, I-frame bursts while
/// fast-forwarding, the original frames otherwise). The session ends when
/// the content is exhausted.
FrameTrace ApplyInteractivity(const FrameTrace& movie,
                              const InteractivityModel& model,
                              rcbr::Rng& rng);

/// The same distortion applied to a precomputed RCBR schedule (bits/s
/// over slots): paused stretches hold a low keep-alive rate, fast-forward
/// stretches demand `ff_rate_factor` times the local schedule rate, and
/// the remaining schedule plays out time-shifted. Used by the admission
/// experiments, which work at renegotiation granularity.
PiecewiseConstant ApplyInteractivityToSchedule(
    const PiecewiseConstant& schedule_bps, const InteractivityModel& model,
    double slot_seconds, double keep_alive_bps, double ff_rate_factor,
    rcbr::Rng& rng);

}  // namespace rcbr::trace
