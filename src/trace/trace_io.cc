#include "trace/trace_io.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"

namespace rcbr::trace {

namespace {

constexpr const char* kFpsHeader = "# fps:";

}  // namespace

FrameTrace ReadTrace(std::istream& in, double default_fps) {
  std::vector<double> bits;
  double fps = default_fps;
  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind(kFpsHeader, 0) == 0) {
        std::istringstream header(line.substr(std::string(kFpsHeader).size()));
        double value = 0;
        if (header >> value && value > 0) fps = value;
      }
      continue;
    }
    std::istringstream row(line);
    double value = 0;
    if (!(row >> value) || value < 0) {
      throw Error("ReadTrace: malformed frame size at line " +
                  std::to_string(line_number));
    }
    bits.push_back(value);
  }
  Require(!bits.empty(), "ReadTrace: no frames in input");
  return FrameTrace(std::move(bits), fps);
}

FrameTrace ReadTraceFile(const std::string& path, double default_fps) {
  std::ifstream in(path);
  if (!in) throw Error("ReadTraceFile: cannot open " + path);
  return ReadTrace(in, default_fps);
}

void WriteTrace(const FrameTrace& trace, std::ostream& out) {
  out << kFpsHeader << ' ' << trace.fps() << '\n';
  out << "# frames: " << trace.frame_count() << '\n';
  for (std::int64_t t = 0; t < trace.frame_count(); ++t) {
    out << trace.bits(t) << '\n';
  }
}

void WriteTraceFile(const FrameTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("WriteTraceFile: cannot open " + path);
  WriteTrace(trace, out);
  if (!out) throw Error("WriteTraceFile: write failed for " + path);
}

}  // namespace rcbr::trace
