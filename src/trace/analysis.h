// Trace analysis: the measurements behind the paper's premise.
//
// Section II rests on measured properties of compressed video: burstiness
// at the frame scale, correlation persisting across seconds (the "multiple
// time scales"), and sustained near-peak scenes. These helpers quantify
// exactly those properties for any FrameTrace, so users can check whether
// their own material is multiple-time-scale traffic (and whether RCBR is
// worth it) before computing schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/frame_trace.h"

namespace rcbr::trace {

/// Sample autocorrelation of per-frame sizes at the given lags.
/// Returns one coefficient in [-1, 1] per lag; lag 0 is always 1.
std::vector<double> Autocorrelation(const FrameTrace& trace,
                                    const std::vector<std::int64_t>& lags);

/// Index of dispersion for counts over windows of `window` frames:
/// Var(window bits) / (mean frame bits * window). Grows with the window
/// for long-range-correlated traffic, flat for i.i.d. frames.
double IndexOfDispersion(const FrameTrace& trace, std::int64_t window);

/// A detected scene: [start, end) frames whose smoothed rate stays on one
/// side of the detector's change threshold.
struct Scene {
  std::int64_t start = 0;
  std::int64_t end = 0;
  /// Mean rate inside the scene, bits/second.
  double mean_rate_bps = 0;

  std::int64_t frames() const { return end - start; }
};

struct SceneDetectorOptions {
  /// Smoothing window (frames) applied before change detection; should
  /// cover at least one GOP so frame-type structure does not trigger.
  std::int64_t smoothing_frames = 24;
  /// A new scene starts when the smoothed rate deviates from the current
  /// scene's running mean by more than this factor.
  double change_ratio = 1.5;
  /// Minimum scene length (frames); shorter detections merge forward.
  std::int64_t min_scene_frames = 12;
};

/// Splits the trace into scenes by detecting sustained rate changes.
std::vector<Scene> DetectScenes(const FrameTrace& trace,
                                const SceneDetectorOptions& options = {});

/// Summary statistics of a scene decomposition.
struct SceneStats {
  std::int64_t scene_count = 0;
  double mean_scene_seconds = 0;
  double max_scene_seconds = 0;
  /// Fraction of total playing time spent in scenes whose mean rate
  /// exceeds `peak_ratio` times the trace mean (the "sustained peak"
  /// time share of Sec. II).
  double sustained_peak_time_fraction = 0;
};
SceneStats SummarizeScenes(const FrameTrace& trace,
                           const std::vector<Scene>& scenes,
                           double peak_ratio = 3.0);

/// Empirical distribution of the rate averaged over `window` frames:
/// sorted per-window rates (bits/s), one entry per non-overlapping window.
std::vector<double> WindowRateDistribution(const FrameTrace& trace,
                                           std::int64_t window);

/// The largest factor by which the trace's rate over any `window`-frame
/// interval exceeds its long-term mean — the paper's "sustained peak of
/// five times the long-term average rate" measurement.
double SustainedPeakRatio(const FrameTrace& trace, std::int64_t window);

}  // namespace rcbr::trace
