#include "trace/interactivity.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::trace {

namespace {

void ValidateModel(const InteractivityModel& model) {
  Require(model.pause_rate_per_s >= 0 && model.ff_rate_per_s >= 0,
          "InteractivityModel: negative event rate");
  Require(model.pause_mean_seconds > 0,
          "InteractivityModel: pause duration must be positive");
  Require(model.ff_mean_content_seconds > 0,
          "InteractivityModel: ff duration must be positive");
  Require(model.ff_speed >= 2, "InteractivityModel: ff speed must be >= 2");
}

enum class Mode { kPlay, kPause, kFastForward };

}  // namespace

FrameTrace ApplyInteractivity(const FrameTrace& movie,
                              const InteractivityModel& model,
                              rcbr::Rng& rng) {
  ValidateModel(model);
  const double slot = movie.slot_seconds();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(movie.frame_count()));

  std::int64_t position = 0;  // content frame cursor
  Mode mode = Mode::kPlay;
  std::int64_t mode_frames_left = 0;  // for pause / ff segments

  // Guard against pathological parameter choices producing endless output
  // (pauses add output without consuming content).
  const std::int64_t max_output = 4 * movie.frame_count() + 100000;

  while (position < movie.frame_count() &&
         static_cast<std::int64_t>(out.size()) < max_output) {
    switch (mode) {
      case Mode::kPlay: {
        out.push_back(movie.bits(position++));
        // Event draws per output slot.
        if (rng.Bernoulli(std::min(1.0, model.pause_rate_per_s * slot))) {
          mode = Mode::kPause;
          mode_frames_left = std::max<std::int64_t>(
              1, static_cast<std::int64_t>(std::llround(
                     rng.Exponential(model.pause_mean_seconds) / slot)));
        } else if (rng.Bernoulli(
                       std::min(1.0, model.ff_rate_per_s * slot))) {
          mode = Mode::kFastForward;
          const double content_seconds =
              rng.Exponential(model.ff_mean_content_seconds);
          mode_frames_left = std::max<std::int64_t>(
              1, static_cast<std::int64_t>(
                     std::llround(content_seconds / slot)));
        }
        break;
      }
      case Mode::kPause: {
        out.push_back(0.0);
        if (--mode_frames_left <= 0) mode = Mode::kPlay;
        break;
      }
      case Mode::kFastForward: {
        // Consume ff_speed content frames, emit the largest (the I frame
        // a player would display).
        double biggest = 0;
        for (std::int64_t k = 0;
             k < model.ff_speed && position < movie.frame_count(); ++k) {
          biggest = std::max(biggest, movie.bits(position++));
          --mode_frames_left;
        }
        out.push_back(biggest);
        if (mode_frames_left <= 0) mode = Mode::kPlay;
        break;
      }
    }
  }
  Require(!out.empty(), "ApplyInteractivity: empty session");
  return FrameTrace(std::move(out), movie.fps());
}

PiecewiseConstant ApplyInteractivityToSchedule(
    const PiecewiseConstant& schedule_bps, const InteractivityModel& model,
    double slot_seconds, double keep_alive_bps, double ff_rate_factor,
    rcbr::Rng& rng) {
  ValidateModel(model);
  Require(slot_seconds > 0, "ApplyInteractivityToSchedule: bad slot");
  Require(keep_alive_bps >= 0,
          "ApplyInteractivityToSchedule: negative keep-alive");
  Require(ff_rate_factor >= 1,
          "ApplyInteractivityToSchedule: ff factor must be >= 1");

  std::vector<Step> steps;
  std::int64_t out_slot = 0;
  std::int64_t position = 0;  // content slot cursor
  const std::int64_t content_slots = schedule_bps.length();
  auto emit = [&steps, &out_slot](double rate, std::int64_t slots) {
    if (slots <= 0) return;
    steps.push_back({out_slot, rate});
    out_slot += slots;
  };

  while (position < content_slots) {
    // Time to the next interactivity event, in slots.
    const double total_rate = model.pause_rate_per_s + model.ff_rate_per_s;
    std::int64_t play_slots = content_slots - position;
    bool pause_next = false;
    if (total_rate > 0) {
      const double gap_s = rng.Exponential(1.0 / total_rate);
      play_slots = std::min<std::int64_t>(
          play_slots, std::max<std::int64_t>(
                          1, static_cast<std::int64_t>(
                                 std::llround(gap_s / slot_seconds))));
      pause_next = rng.Bernoulli(model.pause_rate_per_s / total_rate);
    }
    // Play the schedule as-is for play_slots, preserving its steps.
    const std::int64_t play_end = position + play_slots;
    while (position < play_end) {
      const double rate = schedule_bps.At(position);
      // Extend to the end of the current schedule step or of the segment.
      std::int64_t run_end = position + 1;
      while (run_end < play_end && schedule_bps.At(run_end) == rate) {
        ++run_end;
      }
      emit(rate, run_end - position);
      position = run_end;
    }
    if (position >= content_slots) break;

    if (pause_next) {
      const std::int64_t pause_slots = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 std::llround(rng.Exponential(model.pause_mean_seconds) /
                              slot_seconds)));
      emit(keep_alive_bps, pause_slots);
    } else {
      const std::int64_t content = std::min<std::int64_t>(
          content_slots - position,
          std::max<std::int64_t>(
              1, static_cast<std::int64_t>(std::llround(
                     rng.Exponential(model.ff_mean_content_seconds) /
                     slot_seconds))));
      const std::int64_t ff_slots =
          std::max<std::int64_t>(1, content / model.ff_speed);
      // Demand scales with the local schedule level during the skim.
      const double local = schedule_bps.At(position);
      emit(std::max(keep_alive_bps, local * ff_rate_factor), ff_slots);
      position += content;
    }
  }
  Require(out_slot > 0, "ApplyInteractivityToSchedule: empty session");
  return PiecewiseConstant(std::move(steps), out_slot);
}

}  // namespace rcbr::trace
