// A catalog of synthetic VBR source genres.
//
// The paper evaluates on a single movie ("sources are randomly shifted
// versions of this trace"), i.e. a homogeneous mix. Real links carry a
// mixture of genres with very different scene statistics; the catalog
// provides calibrated VbrModel presets spanning the spectrum so the
// admission and multiplexing experiments can be repeated on heterogeneous
// mixes (see bench/ablation_heterogeneous_mix):
//
//  * kActionMovie    — the Star Wars calibration: frequent long action
//                      scenes, sustained peaks ~4.4x mean.
//  * kNewscast       — talking heads: tight activity band, short scenes,
//                      almost no sustained peaks.
//  * kSportscast     — persistent high motion: higher baseline activity,
//                      many medium-length peaks.
//  * kVideoconference— two regimes (talking / screen share), very long
//                      scenes, low rate.
//  * kDocumentary    — slow scene cuts, moderate activity spread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/frame_trace.h"
#include "trace/vbr_synthesizer.h"

namespace rcbr::trace {

enum class Genre {
  kActionMovie,
  kNewscast,
  kSportscast,
  kVideoconference,
  kDocumentary,
};

/// All catalog genres, for iteration.
const std::vector<Genre>& AllGenres();

/// Human-readable name ("action-movie", ...).
std::string GenreName(Genre genre);

/// The calibrated model for a genre. `mean_rate_bps` scales the output
/// (default: the Star Wars mean of 374 kb/s).
VbrModel GenreModel(Genre genre, double mean_rate_bps = 374e3);

/// Convenience: synthesize a trace of the given genre.
FrameTrace MakeGenreTrace(Genre genre, std::uint64_t seed,
                          std::int64_t frame_count,
                          double mean_rate_bps = 374e3);

}  // namespace rcbr::trace
