#include "trace/catalog.h"

#include "trace/star_wars.h"
#include "util/error.h"
#include "util/rng.h"

namespace rcbr::trace {

const std::vector<Genre>& AllGenres() {
  static const std::vector<Genre> genres = {
      Genre::kActionMovie, Genre::kNewscast, Genre::kSportscast,
      Genre::kVideoconference, Genre::kDocumentary};
  return genres;
}

std::string GenreName(Genre genre) {
  switch (genre) {
    case Genre::kActionMovie:
      return "action-movie";
    case Genre::kNewscast:
      return "newscast";
    case Genre::kSportscast:
      return "sportscast";
    case Genre::kVideoconference:
      return "videoconference";
    case Genre::kDocumentary:
      return "documentary";
  }
  throw InvalidArgument("GenreName: unknown genre");
}

VbrModel GenreModel(Genre genre, double mean_rate_bps) {
  Require(mean_rate_bps > 0, "GenreModel: mean rate must be positive");
  VbrModel model = StarWarsModel();  // shared GOP / frame-noise settings
  model.target_mean_rate_bps = mean_rate_bps;
  switch (genre) {
    case Genre::kActionMovie:
      // StarWarsModel() already is the action-movie calibration.
      break;
    case Genre::kNewscast:
      // Narrow activity band, short scenes, no action episodes.
      model.scene_activity_log_sigma = 0.2;
      model.scene_activity_min = 0.6;
      model.scene_activity_max = 1.6;
      model.scene_duration_log_mu = 2.1;  // median ~8 s (anchor shots)
      model.action_probability = 0.0;
      break;
    case Genre::kSportscast:
      // Persistently busy: higher floor, frequent medium peaks.
      model.scene_activity_log_mu = 0.1;
      model.scene_activity_log_sigma = 0.4;
      model.scene_activity_min = 0.6;
      model.scene_activity_max = 3.2;
      model.scene_duration_log_mu = 1.3;  // fast cuts
      model.action_probability = 0.05;
      model.action_activity_min = 2.6;
      model.action_activity_max = 3.6;
      model.action_duration_min_s = 5.0;
      model.action_duration_max_s = 15.0;
      break;
    case Genre::kVideoconference:
      // Two long-lived regimes and little frame noise.
      model.frame_noise_sigma = 0.08;
      model.scene_activity_log_sigma = 0.35;
      model.scene_activity_min = 0.5;
      model.scene_activity_max = 2.0;
      model.scene_duration_log_mu = 3.4;  // median ~30 s
      model.scene_duration_log_sigma = 1.0;
      model.action_probability = 0.0;
      break;
    case Genre::kDocumentary:
      // Slow cuts, moderate spread, rare mild peaks.
      model.scene_activity_log_sigma = 0.45;
      model.scene_activity_max = 2.6;
      model.scene_duration_log_mu = 2.5;  // median ~12 s
      model.action_probability = 0.005;
      model.action_activity_min = 2.2;
      model.action_activity_max = 3.0;
      break;
  }
  return model;
}

FrameTrace MakeGenreTrace(Genre genre, std::uint64_t seed,
                          std::int64_t frame_count, double mean_rate_bps) {
  rcbr::Rng rng(seed);
  return SynthesizeVbr(GenreModel(genre, mean_rate_bps), frame_count, rng);
}

}  // namespace rcbr::trace
