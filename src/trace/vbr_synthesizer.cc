#include "trace/vbr_synthesizer.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::trace {

namespace {

double FrameWeight(const VbrModel& model, char type) {
  switch (type) {
    case 'I':
      return model.i_weight;
    case 'P':
      return model.p_weight;
    case 'B':
      return model.b_weight;
    default:
      throw InvalidArgument("VbrModel: GOP pattern may contain only I/P/B");
  }
}

void ValidateModel(const VbrModel& model) {
  Require(model.fps > 0, "VbrModel: fps must be positive");
  Require(!model.gop_pattern.empty(), "VbrModel: empty GOP pattern");
  for (char c : model.gop_pattern) FrameWeight(model, c);
  Require(model.i_weight > 0 && model.p_weight > 0 && model.b_weight > 0,
          "VbrModel: frame weights must be positive");
  Require(model.frame_noise_sigma >= 0, "VbrModel: negative noise sigma");
  Require(model.scene_activity_min > 0 &&
              model.scene_activity_max >= model.scene_activity_min,
          "VbrModel: bad scene activity range");
  Require(model.scene_duration_min_s > 0, "VbrModel: bad scene duration");
  Require(model.action_probability >= 0 && model.action_probability <= 1,
          "VbrModel: action probability outside [0,1]");
  Require(model.action_activity_min > 0 &&
              model.action_activity_max >= model.action_activity_min,
          "VbrModel: bad action activity range");
  Require(model.action_duration_min_s > 0 &&
              model.action_duration_max_s >= model.action_duration_min_s,
          "VbrModel: bad action duration range");
}

}  // namespace

SceneDraw DrawScene(const VbrModel& model, rcbr::Rng& rng) {
  SceneDraw scene;
  if (rng.Bernoulli(model.action_probability)) {
    scene.action = true;
    scene.activity =
        rng.Uniform(model.action_activity_min, model.action_activity_max);
    const double seconds =
        rng.Uniform(model.action_duration_min_s, model.action_duration_max_s);
    scene.frames = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(seconds * model.fps)));
  } else {
    scene.action = false;
    scene.activity = std::clamp(
        rng.Lognormal(model.scene_activity_log_mu,
                      model.scene_activity_log_sigma),
        model.scene_activity_min, model.scene_activity_max);
    const double seconds =
        std::max(model.scene_duration_min_s,
                 rng.Lognormal(model.scene_duration_log_mu,
                               model.scene_duration_log_sigma));
    scene.frames = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(seconds * model.fps)));
  }
  return scene;
}

FrameTrace SynthesizeVbr(const VbrModel& model, std::int64_t frame_count,
                         rcbr::Rng& rng) {
  ValidateModel(model);
  Require(frame_count >= 1, "SynthesizeVbr: frame_count must be >= 1");

  // Mean GOP weight, used so activity multiplies the *scene-average* rate.
  double weight_sum = 0;
  for (char c : model.gop_pattern) weight_sum += FrameWeight(model, c);
  const double mean_weight =
      weight_sum / static_cast<double>(model.gop_pattern.size());

  // Lognormal noise with E[noise] == 1.
  const double noise_mu =
      -0.5 * model.frame_noise_sigma * model.frame_noise_sigma;

  std::vector<double> bits(static_cast<std::size_t>(frame_count));
  std::int64_t t = 0;
  std::size_t gop_phase = 0;
  while (t < frame_count) {
    const SceneDraw scene = DrawScene(model, rng);
    const std::int64_t scene_end = std::min(frame_count, t + scene.frames);
    for (; t < scene_end; ++t) {
      const char type = model.gop_pattern[gop_phase];
      gop_phase = (gop_phase + 1) % model.gop_pattern.size();
      const double noise =
          model.frame_noise_sigma > 0
              ? rng.Lognormal(noise_mu, model.frame_noise_sigma)
              : 1.0;
      // Unit frame sizes: an activity-1 scene averages 1 "unit" per frame.
      bits[static_cast<std::size_t>(t)] =
          scene.activity * (FrameWeight(model, type) / mean_weight) * noise;
    }
  }

  FrameTrace raw(std::move(bits), model.fps);
  if (model.target_mean_rate_bps <= 0) return raw;

  // Scale to the exact target mean rate.
  const double scale = model.target_mean_rate_bps / raw.mean_rate();
  std::vector<double> scaled = raw.frame_bits();
  for (double& b : scaled) b *= scale;
  return FrameTrace(std::move(scaled), model.fps);
}

}  // namespace rcbr::trace
