#include "trace/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::trace {

std::vector<double> Autocorrelation(const FrameTrace& trace,
                                    const std::vector<std::int64_t>& lags) {
  const auto& bits = trace.frame_bits();
  const auto n = static_cast<std::int64_t>(bits.size());
  const double mean = trace.total_bits() / static_cast<double>(n);
  double variance = 0;
  for (double b : bits) {
    variance += (b - mean) * (b - mean);
  }
  std::vector<double> result;
  result.reserve(lags.size());
  for (std::int64_t lag : lags) {
    Require(lag >= 0 && lag < n, "Autocorrelation: lag out of range");
    if (variance == 0) {
      result.push_back(lag == 0 ? 1.0 : 0.0);
      continue;
    }
    double acc = 0;
    for (std::int64_t t = 0; t + lag < n; ++t) {
      acc += (bits[static_cast<std::size_t>(t)] - mean) *
             (bits[static_cast<std::size_t>(t + lag)] - mean);
    }
    result.push_back(acc / variance);
  }
  return result;
}

double IndexOfDispersion(const FrameTrace& trace, std::int64_t window) {
  Require(window >= 1 && window <= trace.frame_count(),
          "IndexOfDispersion: bad window");
  const FrameTrace agg = trace.Aggregate(window);
  const double mean_frame =
      trace.total_bits() / static_cast<double>(trace.frame_count());
  double mean_window = 0;
  for (std::int64_t i = 0; i < agg.frame_count(); ++i) {
    mean_window += agg.bits(i);
  }
  mean_window /= static_cast<double>(agg.frame_count());
  double var = 0;
  for (std::int64_t i = 0; i < agg.frame_count(); ++i) {
    const double d = agg.bits(i) - mean_window;
    var += d * d;
  }
  var /= static_cast<double>(agg.frame_count());
  const double denom = mean_frame * static_cast<double>(window);
  return denom > 0 ? var / denom : 0.0;
}

std::vector<Scene> DetectScenes(const FrameTrace& trace,
                                const SceneDetectorOptions& options) {
  Require(options.smoothing_frames >= 1, "DetectScenes: bad smoothing");
  Require(options.change_ratio > 1.0, "DetectScenes: ratio must exceed 1");
  Require(options.min_scene_frames >= 1, "DetectScenes: bad min length");
  const auto n = trace.frame_count();

  // Centered moving average (clamped at the edges).
  const std::int64_t w = std::min(options.smoothing_frames, n);
  std::vector<double> smooth(static_cast<std::size_t>(n));
  double acc = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // window [lo, hi)
  for (std::int64_t t = 0; t < n; ++t) {
    const std::int64_t want_lo = std::max<std::int64_t>(0, t - w / 2);
    const std::int64_t want_hi = std::min(n, want_lo + w);
    while (hi < want_hi) acc += trace.bits(hi++);
    while (lo < want_lo) acc -= trace.bits(lo++);
    smooth[static_cast<std::size_t>(t)] =
        acc / static_cast<double>(hi - lo);
  }

  std::vector<Scene> scenes;
  std::int64_t start = 0;
  double scene_sum = 0;
  std::int64_t scene_len = 0;
  for (std::int64_t t = 0; t < n; ++t) {
    const double s = smooth[static_cast<std::size_t>(t)];
    if (scene_len >= options.min_scene_frames) {
      const double scene_mean = scene_sum / static_cast<double>(scene_len);
      const bool jump = s > scene_mean * options.change_ratio ||
                        s * options.change_ratio < scene_mean;
      if (jump) {
        scenes.push_back(
            {start, t, trace.WindowRate(start, t)});
        start = t;
        scene_sum = 0;
        scene_len = 0;
      }
    }
    scene_sum += s;
    ++scene_len;
  }
  scenes.push_back({start, n, trace.WindowRate(start, n)});
  return scenes;
}

SceneStats SummarizeScenes(const FrameTrace& trace,
                           const std::vector<Scene>& scenes,
                           double peak_ratio) {
  Require(!scenes.empty(), "SummarizeScenes: no scenes");
  SceneStats stats;
  stats.scene_count = static_cast<std::int64_t>(scenes.size());
  const double mean_rate = trace.mean_rate();
  double total_seconds = 0;
  double peak_seconds = 0;
  for (const Scene& scene : scenes) {
    const double seconds =
        static_cast<double>(scene.frames()) / trace.fps();
    total_seconds += seconds;
    stats.max_scene_seconds = std::max(stats.max_scene_seconds, seconds);
    if (scene.mean_rate_bps > peak_ratio * mean_rate) {
      peak_seconds += seconds;
    }
  }
  stats.mean_scene_seconds =
      total_seconds / static_cast<double>(scenes.size());
  stats.sustained_peak_time_fraction =
      total_seconds > 0 ? peak_seconds / total_seconds : 0.0;
  return stats;
}

std::vector<double> WindowRateDistribution(const FrameTrace& trace,
                                           std::int64_t window) {
  Require(window >= 1 && window <= trace.frame_count(),
          "WindowRateDistribution: bad window");
  std::vector<double> rates;
  for (std::int64_t start = 0; start + window <= trace.frame_count();
       start += window) {
    rates.push_back(trace.WindowRate(start, start + window));
  }
  std::sort(rates.begin(), rates.end());
  return rates;
}

double SustainedPeakRatio(const FrameTrace& trace, std::int64_t window) {
  return trace.MaxWindowRate(window) / trace.mean_rate();
}

}  // namespace rcbr::trace
