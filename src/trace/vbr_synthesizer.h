// Synthetic multi-time-scale VBR video sources.
//
// Substitute for proprietary MPEG trace files (DESIGN.md Sec. 2). The
// generator composes the two time scales the paper identifies:
//
//  * fast: the MPEG group-of-pictures (GOP) structure — deterministic
//    relative sizes of I, P and B frames plus per-frame multiplicative
//    noise (variation *within* a scene);
//  * slow: a semi-Markov scene process — each scene holds an activity
//    multiplier for a random duration; occasional long "action" scenes
//    produce the sustained near-peak episodes (tens of seconds) that make
//    one-shot descriptors fail.
//
// VbrSynthesizer is the general engine; star_wars.h provides parameters
// calibrated to the published statistics of the MPEG-1 Star Wars trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/frame_trace.h"
#include "util/rng.h"

namespace rcbr::trace {

/// Parameters for the scene/GOP VBR synthesizer.
struct VbrModel {
  double fps = 24.0;

  /// GOP pattern as a string of 'I', 'P', 'B' (repeated cyclically).
  std::string gop_pattern = "IBBPBBPBBPBB";

  /// Relative frame sizes by type (dimensionless weights).
  double i_weight = 5.0;
  double p_weight = 3.0;
  double b_weight = 1.0;

  /// Per-frame multiplicative lognormal noise: sigma of log-size.
  double frame_noise_sigma = 0.12;

  // --- Slow time scale: scenes ------------------------------------------
  /// Normal scenes: activity multiplier ~ Lognormal(mu, sigma), clamped.
  double scene_activity_log_mu = -0.18;
  double scene_activity_log_sigma = 0.55;
  double scene_activity_min = 0.25;
  double scene_activity_max = 3.0;
  /// Normal scene durations (seconds) ~ Lognormal with this mean/sigma of
  /// the log; gives a few seconds typical, occasional tens of seconds.
  double scene_duration_log_mu = 1.6;   // median ~5 s
  double scene_duration_log_sigma = 0.8;
  double scene_duration_min_s = 0.5;

  /// Action scenes: probability that a new scene is an "action" scene with
  /// sustained near-peak activity (the multiple-time-scale signature).
  double action_probability = 0.03;
  double action_activity_min = 3.4;
  double action_activity_max = 4.4;
  double action_duration_min_s = 10.0;
  double action_duration_max_s = 30.0;

  /// Target long-term mean rate in bits/second; the generated trace is
  /// scaled so its empirical mean matches exactly. <= 0 disables scaling.
  double target_mean_rate_bps = 0.0;
};

/// Synthesizes `frame_count` frames from `model` using `rng`.
FrameTrace SynthesizeVbr(const VbrModel& model, std::int64_t frame_count,
                         rcbr::Rng& rng);

/// The scene boundaries (frame index of each scene start) drawn in the
/// last call per rng — exposed for tests through this pure helper: draws
/// one scene (activity, duration in frames) from the model.
struct SceneDraw {
  double activity = 1.0;
  std::int64_t frames = 1;
  bool action = false;
};
SceneDraw DrawScene(const VbrModel& model, rcbr::Rng& rng);

}  // namespace rcbr::trace
