// Trace file I/O.
//
// Traces are stored in the plain format used by the public VBR trace
// archives: one frame size per line (here: bits), `#`-prefixed comment
// lines allowed, with an optional `# fps: <value>` header. This lets users
// feed real trace files (e.g. a Star Wars trace obtained elsewhere) to any
// binary in this repository instead of the bundled synthesizer.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/frame_trace.h"

namespace rcbr::trace {

/// Parses a trace from a stream. `default_fps` applies when the stream has
/// no `# fps:` header. Throws rcbr::Error on malformed input.
FrameTrace ReadTrace(std::istream& in, double default_fps = 24.0);

/// Reads a trace from a file path.
FrameTrace ReadTraceFile(const std::string& path, double default_fps = 24.0);

/// Writes a trace with an fps header.
void WriteTrace(const FrameTrace& trace, std::ostream& out);

/// Writes a trace to a file path.
void WriteTraceFile(const FrameTrace& trace, const std::string& path);

}  // namespace rcbr::trace
