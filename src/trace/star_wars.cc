#include "trace/star_wars.h"

namespace rcbr::trace {

VbrModel StarWarsModel() {
  VbrModel model;
  model.fps = kStarWarsFps;
  model.gop_pattern = "IBBPBBPBBPBB";
  // MPEG-1 I:P:B size ratios commonly reported for this encoding.
  model.i_weight = 5.0;
  model.p_weight = 3.0;
  model.b_weight = 1.0;
  model.frame_noise_sigma = 0.12;

  // Normal scenes: mostly 0.4x..2x activity, median scene ~5 s.
  model.scene_activity_log_mu = -0.18;
  model.scene_activity_log_sigma = 0.55;
  model.scene_activity_min = 0.25;
  model.scene_activity_max = 3.0;
  model.scene_duration_log_mu = 1.6;
  model.scene_duration_log_sigma = 0.8;
  model.scene_duration_min_s = 0.5;

  // Action scenes: sustained ~4-4.5x mean for 10-30 s. After the exact
  // mean normalization below, the equivalent bandwidth at a 300 kb buffer
  // lands close to the paper's e_B = 4.06x mean (Sec. V-B).
  // ~1.5% of scenes are action scenes; with their 10-30 s durations this
  // puts ~4% of playing time in sustained near-peak episodes.
  model.action_probability = 0.015;
  model.action_activity_min = 3.4;
  model.action_activity_max = 4.4;
  model.action_duration_min_s = 10.0;
  model.action_duration_max_s = 30.0;

  model.target_mean_rate_bps = kStarWarsMeanRateBps;
  return model;
}

FrameTrace MakeStarWarsTrace(std::uint64_t seed, std::int64_t frame_count) {
  rcbr::Rng rng(seed);
  return SynthesizeVbr(StarWarsModel(), frame_count, rng);
}

}  // namespace rcbr::trace
