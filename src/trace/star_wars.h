// Star-Wars-like synthetic trace.
//
// The paper evaluates everything on the MPEG-1 encoding of the Star Wars
// movie (Garrett/Willinger): ~2 hours at 24 fps (~171k frames), long-term
// mean rate 374 kb/s, sustained episodes of ~5x the mean lasting over
// 10 s, and at most ~300 kb in any 3 consecutive frames. That trace is not
// redistributable, so this header provides VbrModel parameters calibrated
// to those published statistics (see DESIGN.md "Substitutions") and a
// convenience constructor.
#pragma once

#include <cstdint>

#include "trace/frame_trace.h"
#include "trace/vbr_synthesizer.h"
#include "util/rng.h"

namespace rcbr::trace {

/// Published statistics of the MPEG-1 Star Wars trace quoted in the paper.
inline constexpr double kStarWarsMeanRateBps = 374e3;
inline constexpr double kStarWarsFps = 24.0;
inline constexpr std::int64_t kStarWarsFrameCount = 171000;
/// Paper: buffer of 300 kb is "slightly more than the maximum size of
/// three consecutive frames".
inline constexpr double kStarWarsMax3FrameBits = 290e3;

/// The calibrated model.
VbrModel StarWarsModel();

/// Generates a Star-Wars-like trace. `frame_count` defaults to the full
/// movie; smaller values give faster experiments with the same per-frame
/// statistics.
FrameTrace MakeStarWarsTrace(std::uint64_t seed,
                             std::int64_t frame_count = kStarWarsFrameCount);

}  // namespace rcbr::trace
