#include "trace/frame_trace.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace rcbr::trace {

FrameTrace::FrameTrace(std::vector<double> frame_bits, double fps)
    : bits_(std::move(frame_bits)), fps_(fps) {
  Require(!bits_.empty(), "FrameTrace: empty trace");
  Require(fps_ > 0, "FrameTrace: fps must be positive");
  for (double b : bits_) {
    Require(b >= 0, "FrameTrace: negative frame size");
  }
  total_bits_ = std::accumulate(bits_.begin(), bits_.end(), 0.0);
}

double FrameTrace::max_frame_bits() const {
  return *std::max_element(bits_.begin(), bits_.end());
}

double FrameTrace::peak_rate() const { return max_frame_bits() * fps_; }

double FrameTrace::MaxWindowBits(std::int64_t window) const {
  Require(window >= 1 && window <= frame_count(),
          "FrameTrace::MaxWindowBits: bad window");
  const auto w = static_cast<std::size_t>(window);
  double acc = 0;
  for (std::size_t i = 0; i < w; ++i) acc += bits_[i];
  double best = acc;
  for (std::size_t i = w; i < bits_.size(); ++i) {
    acc += bits_[i] - bits_[i - w];
    best = std::max(best, acc);
  }
  return best;
}

double FrameTrace::WindowRate(std::int64_t from, std::int64_t to) const {
  Require(from >= 0 && to <= frame_count() && from < to,
          "FrameTrace::WindowRate: bad range");
  double acc = 0;
  for (std::int64_t t = from; t < to; ++t) acc += bits(t);
  return acc * fps_ / static_cast<double>(to - from);
}

double FrameTrace::MaxWindowRate(std::int64_t window) const {
  return MaxWindowBits(window) * fps_ / static_cast<double>(window);
}

FrameTrace FrameTrace::CircularShift(std::int64_t shift) const {
  const std::int64_t n = frame_count();
  std::int64_t s = shift % n;
  if (s < 0) s += n;
  std::vector<double> rotated(bits_.size());
  for (std::int64_t t = 0; t < n; ++t) {
    rotated[static_cast<std::size_t>(t)] =
        bits_[static_cast<std::size_t>((t + s) % n)];
  }
  return FrameTrace(std::move(rotated), fps_);
}

FrameTrace FrameTrace::Slice(std::int64_t from, std::int64_t to) const {
  Require(from >= 0 && from < to && to <= frame_count(),
          "FrameTrace::Slice: bad range");
  std::vector<double> part(bits_.begin() + from, bits_.begin() + to);
  return FrameTrace(std::move(part), fps_);
}

FrameTrace FrameTrace::Aggregate(std::int64_t factor) const {
  Require(factor >= 1, "FrameTrace::Aggregate: factor must be >= 1");
  const std::int64_t groups = frame_count() / factor;
  Require(groups >= 1, "FrameTrace::Aggregate: trace shorter than factor");
  std::vector<double> agg(static_cast<std::size_t>(groups), 0.0);
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t k = 0; k < factor; ++k) {
      agg[static_cast<std::size_t>(g)] += bits(g * factor + k);
    }
  }
  return FrameTrace(std::move(agg), fps_ / static_cast<double>(factor));
}

std::vector<double> FrameTrace::SlotRates() const {
  std::vector<double> rates(bits_.size());
  for (std::size_t i = 0; i < bits_.size(); ++i) rates[i] = bits_[i] * fps_;
  return rates;
}

}  // namespace rcbr::trace
