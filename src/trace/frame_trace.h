// Per-frame VBR traffic traces.
//
// The paper's experiments run on the MPEG-1 Star Wars trace: a sequence of
// frame sizes emitted at a fixed frame rate. FrameTrace is that object:
// frame i carries `bits(i)` bits and occupies one slot of duration
// 1/fps seconds. Sources in the multiplexing experiments are "randomly
// shifted versions of this trace" — CircularShift provides that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rcbr::trace {

class FrameTrace {
 public:
  /// Builds a trace from per-frame bit counts at `fps` frames per second.
  /// All sizes must be nonnegative and the trace nonempty.
  FrameTrace(std::vector<double> frame_bits, double fps);

  std::int64_t frame_count() const {
    return static_cast<std::int64_t>(bits_.size());
  }
  double fps() const { return fps_; }
  /// Slot duration in seconds.
  double slot_seconds() const { return 1.0 / fps_; }
  /// Total playing time in seconds.
  double duration_seconds() const {
    return static_cast<double>(frame_count()) / fps_;
  }

  /// Bits in frame t. Requires 0 <= t < frame_count().
  double bits(std::int64_t t) const { return bits_[static_cast<std::size_t>(t)]; }
  const std::vector<double>& frame_bits() const { return bits_; }

  double total_bits() const { return total_bits_; }
  /// Long-term average rate in bits/second.
  double mean_rate() const { return total_bits_ / duration_seconds(); }
  /// Instantaneous peak rate (largest frame / slot duration), bits/second.
  double peak_rate() const;
  /// Largest frame in bits.
  double max_frame_bits() const;

  /// Largest total bits over any `window` consecutive frames.
  /// Requires 1 <= window <= frame_count().
  double MaxWindowBits(std::int64_t window) const;

  /// Average rate (bits/s) over frames [from, to). Requires from < to.
  double WindowRate(std::int64_t from, std::int64_t to) const;

  /// Largest average rate over any window of `window` frames, bits/second.
  double MaxWindowRate(std::int64_t window) const;

  /// The trace rotated left by `shift` frames (sources with random phase).
  FrameTrace CircularShift(std::int64_t shift) const;

  /// Frames [from, to) as a new trace. Requires 0 <= from < to <= count.
  FrameTrace Slice(std::int64_t from, std::int64_t to) const;

  /// Sums each group of `factor` consecutive frames into one slot, with
  /// fps scaled accordingly (coarse time-scale views; trailing partial
  /// group dropped). Requires factor >= 1 and at least one full group.
  FrameTrace Aggregate(std::int64_t factor) const;

  /// Per-slot rates in bits/second (bits(t) * fps).
  std::vector<double> SlotRates() const;

 private:
  std::vector<double> bits_;
  double fps_;
  double total_bits_ = 0;
};

}  // namespace rcbr::trace
