// Admission control policies for RCBR (Sec. VI).
//
// All three policies bound the renegotiation failure probability with the
// Chernoff estimate (eq. 12); they differ in where the per-call bandwidth
// distribution comes from:
//
//  * PerfectKnowledgePolicy — the true marginal distribution is known a
//    priori; the maximum admissible call count is precomputed. This is the
//    reference scheme the paper normalizes utilization against.
//  * MemorylessPolicy — the certainty-equivalent scheme: at each arrival
//    it estimates the distribution from the *instantaneous* reservations
//    of the calls currently in the system ("uses only information about
//    the current state of the network"). The paper shows it is not
//    robust: failure probabilities 3-4 orders of magnitude above target
//    on small links.
//  * MemoryPolicy — "we keep track of how often each bandwidth level has
//    been reserved by any of the calls currently in the system ... we
//    accumulate information about the entire history of each call present
//    in the system", yielding a far more accurate marginal estimate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ldev/chernoff.h"
#include "obs/recorder.h"
#include "sim/call_sim.h"
#include "util/histogram.h"

namespace rcbr::admission {

struct PolicyOptions {
  /// QoS target on the renegotiation failure probability.
  double target_failure_probability = 1e-3;
  /// Shared rate grid (bits/s) on which the estimators accumulate mass.
  std::vector<double> rate_grid_bps;
  /// Optional observability sink: every Chernoff admission test emits a
  /// kAdmitAccept/kAdmitReject event carrying the estimated failure
  /// probability and the target, plus "mbac.*" decision counters.
  obs::Recorder* recorder = nullptr;
};

/// Chernoff admission with a known per-call distribution.
class PerfectKnowledgePolicy final : public sim::AdmissionPolicy {
 public:
  PerfectKnowledgePolicy(ldev::DiscreteDistribution call_distribution,
                         double capacity_bps, double target,
                         obs::Recorder* recorder = nullptr);

  /// The precomputed maximum number of simultaneous calls.
  std::int64_t max_calls() const { return max_calls_; }

  bool Admit(double now, const sim::LinkView& view,
             double initial_rate_bps) override;
  void OnAdmitted(double, std::uint64_t, double) override { ++active_; }
  void OnRateChange(double, std::uint64_t, double, double) override {}
  void OnDeparture(double, std::uint64_t, double) override { --active_; }

 private:
  std::int64_t max_calls_;
  std::int64_t active_ = 0;
  obs::Recorder* obs_ = nullptr;
};

/// Memoryless certainty-equivalent MBAC.
class MemorylessPolicy final : public sim::AdmissionPolicy {
 public:
  explicit MemorylessPolicy(PolicyOptions options);

  bool Admit(double now, const sim::LinkView& view,
             double initial_rate_bps) override;
  /// Ladder rung k > 0: the downgraded call enters the Chernoff test as
  /// a known constant load `rung_rate_bps` against the residual capacity
  /// (rung 0 is the paper's n+1-iid test, bit-identical to Admit).
  bool AdmitAtRung(double now, const sim::LinkView& view,
                   double rung_rate_bps, std::size_t rung) override;
  void OnAdmitted(double, std::uint64_t, double) override {}
  void OnRateChange(double, std::uint64_t, double, double) override {}
  void OnDeparture(double, std::uint64_t, double) override {}

 private:
  PolicyOptions options_;
};

/// Memory-based MBAC with exponential aging: like MemoryPolicy, but the
/// accumulated history decays with time constant `aging_tau_seconds`.
/// Bounded effective memory makes the estimator track nonstationary call
/// populations (e.g. a change in the movie mix) while still averaging far
/// more samples than the memoryless snapshot. tau -> infinity recovers
/// MemoryPolicy; tau -> 0 approaches the memoryless scheme.
class AgedMemoryPolicy final : public sim::AdmissionPolicy {
 public:
  AgedMemoryPolicy(PolicyOptions options, double aging_tau_seconds);

  bool Admit(double now, const sim::LinkView& view,
             double initial_rate_bps) override;
  /// Ladder rung k > 0: known-constant-load test against the residual
  /// capacity (see MemorylessPolicy::AdmitAtRung).
  bool AdmitAtRung(double now, const sim::LinkView& view,
                   double rung_rate_bps, std::size_t rung) override;
  void OnAdmitted(double now, std::uint64_t call_id,
                  double rate_bps) override;
  void OnRateChange(double now, std::uint64_t call_id, double old_rate_bps,
                    double new_rate_bps) override;
  void OnDeparture(double now, std::uint64_t call_id,
                   double rate_bps) override;

 private:
  struct CallHistory {
    Histogram levels;
    double since = 0;
    double current_rate = 0;
  };

  /// Ages the call's stored mass to `now` and accumulates the open
  /// interval at its current level.
  void Roll(CallHistory& call, double now) const;

  /// Pooled marginal estimate across the (rolled) call histories.
  Histogram Pooled(double now);

  PolicyOptions options_;
  double tau_seconds_;
  std::unordered_map<std::uint64_t, CallHistory> calls_;
};

/// Memory-based MBAC: time-weighted per-call reservation histories.
class MemoryPolicy final : public sim::AdmissionPolicy {
 public:
  explicit MemoryPolicy(PolicyOptions options);

  bool Admit(double now, const sim::LinkView& view,
             double initial_rate_bps) override;
  /// Ladder rung k > 0: known-constant-load test against the residual
  /// capacity (see MemorylessPolicy::AdmitAtRung).
  bool AdmitAtRung(double now, const sim::LinkView& view,
                   double rung_rate_bps, std::size_t rung) override;
  void OnAdmitted(double now, std::uint64_t call_id,
                  double rate_bps) override;
  void OnRateChange(double now, std::uint64_t call_id, double old_rate_bps,
                    double new_rate_bps) override;
  void OnDeparture(double now, std::uint64_t call_id,
                   double rate_bps) override;

 private:
  struct CallHistory {
    Histogram levels;
    double since = 0;        // when the current level was entered
    double current_rate = 0; // bits/s
  };

  /// Accumulates the open interval [since, now) of every call into its
  /// histogram, then returns the pooled marginal estimate.
  Histogram PooledHistory(double now) const;

  PolicyOptions options_;
  std::unordered_map<std::uint64_t, CallHistory> calls_;
};

}  // namespace rcbr::admission
