#include "admission/descriptor.h"

#include <algorithm>
#include <map>

#include "util/error.h"

namespace rcbr::admission {

ldev::DiscreteDistribution DescriptorFromSchedule(
    const PiecewiseConstant& schedule) {
  std::map<double, double> slots_at;  // rate -> slots
  const auto& steps = schedule.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::int64_t end =
        (i + 1 < steps.size()) ? steps[i + 1].start : schedule.length();
    slots_at[steps[i].value] += static_cast<double>(end - steps[i].start);
  }
  std::vector<double> values;
  std::vector<double> probs;
  values.reserve(slots_at.size());
  probs.reserve(slots_at.size());
  const auto total = static_cast<double>(schedule.length());
  for (const auto& [rate, slots] : slots_at) {
    values.push_back(rate);
    probs.push_back(slots / total);
  }
  return ldev::DiscreteDistribution(std::move(values), std::move(probs));
}

Histogram HistogramFromSchedule(const PiecewiseConstant& schedule,
                                std::vector<double> grid) {
  Histogram histogram(std::move(grid));
  const auto& steps = schedule.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::int64_t end =
        (i + 1 < steps.size()) ? steps[i + 1].start : schedule.length();
    histogram.AddNearest(steps[i].value,
                         static_cast<double>(end - steps[i].start));
  }
  return histogram;
}

ldev::DiscreteDistribution PooledDescriptor(
    const std::vector<PiecewiseConstant>& schedules,
    const std::vector<double>& grid) {
  Require(!schedules.empty(), "PooledDescriptor: no schedules");
  Histogram pooled(grid);
  for (const PiecewiseConstant& schedule : schedules) {
    pooled.Merge(HistogramFromSchedule(schedule, grid));
  }
  return ldev::DiscreteDistribution(pooled.values(), pooled.Probabilities());
}

}  // namespace rcbr::admission
