#include "admission/deterministic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::admission {

double SigmaForRho(const std::vector<double>& workload_bits,
                   double rho_bits_per_slot) {
  Require(!workload_bits.empty(), "SigmaForRho: empty workload");
  Require(rho_bits_per_slot >= 0, "SigmaForRho: negative rate");
  // sigma = max over t of the Lindley recursion of (a_t - rho): the
  // largest excess any window accumulates above the token rate.
  double excess = 0;
  double sigma = 0;
  for (double a : workload_bits) {
    excess = std::max(excess + a - rho_bits_per_slot, 0.0);
    sigma = std::max(sigma, excess);
  }
  return sigma;
}

LeakyBucketDescriptor EnvelopeAtRate(const std::vector<double>& workload_bits,
                                     double rho_bits_per_slot) {
  return {SigmaForRho(workload_bits, rho_bits_per_slot),
          rho_bits_per_slot};
}

std::int64_t MaxDeterministicCalls(const LeakyBucketDescriptor& descriptor,
                                   double capacity_bits_per_slot,
                                   double buffer_bits) {
  Require(descriptor.sigma_bits >= 0 && descriptor.rho_bits_per_slot >= 0,
          "MaxDeterministicCalls: negative descriptor");
  Require(capacity_bits_per_slot >= 0 && buffer_bits >= 0,
          "MaxDeterministicCalls: negative resources");
  double by_rate = 1e300;
  if (descriptor.rho_bits_per_slot > 0) {
    by_rate = capacity_bits_per_slot / descriptor.rho_bits_per_slot;
  }
  double by_buffer = 1e300;
  if (descriptor.sigma_bits > 0) {
    by_buffer = buffer_bits / descriptor.sigma_bits;
  }
  const double n = std::min(by_rate, by_buffer);
  if (n >= 1e18) {
    throw InvalidArgument(
        "MaxDeterministicCalls: degenerate descriptor admits unboundedly");
  }
  return static_cast<std::int64_t>(std::floor(n + 1e-9));
}

std::int64_t MaxPeakRateCalls(double peak_bits_per_slot,
                              double capacity_bits_per_slot) {
  Require(peak_bits_per_slot > 0, "MaxPeakRateCalls: peak must be positive");
  Require(capacity_bits_per_slot >= 0,
          "MaxPeakRateCalls: negative capacity");
  return static_cast<std::int64_t>(
      std::floor(capacity_bits_per_slot / peak_bits_per_slot + 1e-9));
}

}  // namespace rcbr::admission
