#include "admission/policies.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::admission {

namespace {

/// Chernoff admission test shared by the estimating policies: admit iff
/// the estimated failure probability with one more call stays at or below
/// the target. `estimate` must carry positive mass. Decisions are
/// reported through `obs` (if any) together with the Chernoff margin.
bool ChernoffAdmit(const Histogram& estimate, std::int64_t current_calls,
                   double capacity_bps, double target, obs::Recorder* obs,
                   double now) {
  const ldev::DiscreteDistribution dist(estimate.values(),
                                        estimate.Probabilities());
  const double failure =
      ldev::ChernoffOverflowProbability(dist, current_calls + 1,
                                        capacity_bps);
  const bool admit = failure <= target;
  if constexpr (obs::kEnabled) {
    obs::Count(obs, admit ? "mbac.admit_accept" : "mbac.admit_reject");
    obs::SetGauge(obs, "mbac.failure_estimate", failure);
    obs::Emit(obs, now,
              admit ? obs::EventKind::kAdmitAccept
                    : obs::EventKind::kAdmitReject,
              static_cast<std::uint64_t>(current_calls + 1),
              {"failure_est", failure}, {"target", target},
              {"calls", static_cast<double>(current_calls + 1)});
  }
  return admit;
}

/// Rung-k (k > 0) variant of the Chernoff test: the arriving call is not
/// exchangeable with the full-ask population the estimator describes, so
/// it enters as a known constant load `rung_rate_bps` and the test asks
/// whether the `current_calls` existing calls overflow the *residual*
/// capacity. Monotone in the rung rate: a deeper rung can only pass more
/// easily, which is what turns blocking into downgrading. Decisions land
/// on the same "mbac.*" counters plus "mbac.downgraded_admits", and the
/// trace event carries the rung.
bool ChernoffAdmitDowngraded(const Histogram& estimate,
                             std::int64_t current_calls, double capacity_bps,
                             double rung_rate_bps, std::size_t rung,
                             double target, obs::Recorder* obs, double now) {
  const double residual = capacity_bps - rung_rate_bps;
  bool admit = false;
  double failure = 1.0;
  if (residual > 0) {
    const ldev::DiscreteDistribution dist(estimate.values(),
                                          estimate.Probabilities());
    failure =
        ldev::ChernoffOverflowProbability(dist, current_calls, residual);
    admit = failure <= target;
  }
  if constexpr (obs::kEnabled) {
    obs::Count(obs, admit ? "mbac.admit_accept" : "mbac.admit_reject");
    if (admit) obs::Count(obs, "mbac.downgraded_admits");
    obs::SetGauge(obs, "mbac.failure_estimate", failure);
    obs::Emit(obs, now,
              admit ? obs::EventKind::kAdmitAccept
                    : obs::EventKind::kAdmitReject,
              static_cast<std::uint64_t>(current_calls + 1),
              {"failure_est", failure}, {"target", target},
              {"rung", static_cast<double>(rung)});
  }
  return admit;
}

}  // namespace

PerfectKnowledgePolicy::PerfectKnowledgePolicy(
    ldev::DiscreteDistribution call_distribution, double capacity_bps,
    double target, obs::Recorder* recorder)
    : max_calls_(ldev::MaxAdmissibleCalls(call_distribution, capacity_bps,
                                          target)),
      obs_(recorder) {}

bool PerfectKnowledgePolicy::Admit(double now,
                                   const sim::LinkView& /*view*/,
                                   double /*initial_rate_bps*/) {
  const bool admit = active_ < max_calls_;
  if constexpr (obs::kEnabled) {
    obs::Count(obs_, admit ? "mbac.admit_accept" : "mbac.admit_reject");
    obs::Emit(obs_, now,
              admit ? obs::EventKind::kAdmitAccept
                    : obs::EventKind::kAdmitReject,
              static_cast<std::uint64_t>(active_ + 1),
              {"calls", static_cast<double>(active_ + 1)},
              {"max_calls", static_cast<double>(max_calls_)});
  }
  return admit;
}

MemorylessPolicy::MemorylessPolicy(PolicyOptions options)
    : options_(std::move(options)) {
  Require(!options_.rate_grid_bps.empty(),
          "MemorylessPolicy: empty rate grid");
  Require(options_.target_failure_probability > 0 &&
              options_.target_failure_probability < 1,
          "MemorylessPolicy: target must be in (0,1)");
}

bool MemorylessPolicy::Admit(double now, const sim::LinkView& view,
                             double /*initial_rate_bps*/) {
  const std::vector<double>& rates = *view.call_rates;
  if (rates.empty()) return true;  // nothing to estimate from; the
                                   // simulator's capacity check applies
  Histogram snapshot(options_.rate_grid_bps);
  for (double r : rates) snapshot.AddNearest(r, 1.0);
  return ChernoffAdmit(snapshot, static_cast<std::int64_t>(rates.size()),
                       view.capacity_bps,
                       options_.target_failure_probability,
                       options_.recorder, now);
}

bool MemorylessPolicy::AdmitAtRung(double now, const sim::LinkView& view,
                                   double rung_rate_bps, std::size_t rung) {
  if (rung == 0) return Admit(now, view, rung_rate_bps);
  const std::vector<double>& rates = *view.call_rates;
  if (rates.empty()) return true;
  Histogram snapshot(options_.rate_grid_bps);
  for (double r : rates) snapshot.AddNearest(r, 1.0);
  return ChernoffAdmitDowngraded(
      snapshot, static_cast<std::int64_t>(rates.size()), view.capacity_bps,
      rung_rate_bps, rung, options_.target_failure_probability,
      options_.recorder, now);
}

MemoryPolicy::MemoryPolicy(PolicyOptions options)
    : options_(std::move(options)) {
  Require(!options_.rate_grid_bps.empty(), "MemoryPolicy: empty rate grid");
  Require(options_.target_failure_probability > 0 &&
              options_.target_failure_probability < 1,
          "MemoryPolicy: target must be in (0,1)");
}

AgedMemoryPolicy::AgedMemoryPolicy(PolicyOptions options,
                                   double aging_tau_seconds)
    : options_(std::move(options)), tau_seconds_(aging_tau_seconds) {
  Require(!options_.rate_grid_bps.empty(),
          "AgedMemoryPolicy: empty rate grid");
  Require(options_.target_failure_probability > 0 &&
              options_.target_failure_probability < 1,
          "AgedMemoryPolicy: target must be in (0,1)");
  Require(aging_tau_seconds > 0, "AgedMemoryPolicy: tau must be positive");
}

void AgedMemoryPolicy::Roll(CallHistory& call, double now) const {
  const double open = now - call.since;
  if (open <= 0) return;
  // Decay the old mass, then add the just-elapsed interval. Weighting the
  // fresh interval at full strength keeps the estimator simple; the decay
  // factor is what bounds the memory.
  call.levels.Scale(std::exp(-open / tau_seconds_));
  call.levels.AddNearest(call.current_rate, open);
  call.since = now;
}

Histogram AgedMemoryPolicy::Pooled(double now) {
  Histogram pooled(options_.rate_grid_bps);
  for (auto& [id, call] : calls_) {
    Roll(call, now);
    pooled.Merge(call.levels);
  }
  return pooled;
}

bool AgedMemoryPolicy::Admit(double now, const sim::LinkView& view,
                             double /*initial_rate_bps*/) {
  if (calls_.empty()) return true;
  const Histogram pooled = Pooled(now);
  if (pooled.total_weight() <= 0) return true;
  return ChernoffAdmit(pooled, static_cast<std::int64_t>(calls_.size()),
                       view.capacity_bps,
                       options_.target_failure_probability,
                       options_.recorder, now);
}

bool AgedMemoryPolicy::AdmitAtRung(double now, const sim::LinkView& view,
                                   double rung_rate_bps, std::size_t rung) {
  if (rung == 0) return Admit(now, view, rung_rate_bps);
  if (calls_.empty()) return true;
  const Histogram pooled = Pooled(now);
  if (pooled.total_weight() <= 0) return true;
  return ChernoffAdmitDowngraded(
      pooled, static_cast<std::int64_t>(calls_.size()), view.capacity_bps,
      rung_rate_bps, rung, options_.target_failure_probability,
      options_.recorder, now);
}

void AgedMemoryPolicy::OnAdmitted(double now, std::uint64_t call_id,
                                  double rate_bps) {
  CallHistory history{Histogram(options_.rate_grid_bps), now, rate_bps};
  calls_.emplace(call_id, std::move(history));
}

void AgedMemoryPolicy::OnRateChange(double now, std::uint64_t call_id,
                                    double /*old_rate_bps*/,
                                    double new_rate_bps) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Roll(it->second, now);
  it->second.current_rate = new_rate_bps;
}

void AgedMemoryPolicy::OnDeparture(double /*now*/, std::uint64_t call_id,
                                   double /*rate_bps*/) {
  calls_.erase(call_id);
}

Histogram MemoryPolicy::PooledHistory(double now) const {
  Histogram pooled(options_.rate_grid_bps);
  for (const auto& [id, call] : calls_) {
    pooled.Merge(call.levels);
    const double open = now - call.since;
    if (open > 0) pooled.AddNearest(call.current_rate, open);
  }
  return pooled;
}

bool MemoryPolicy::Admit(double now, const sim::LinkView& view,
                         double /*initial_rate_bps*/) {
  if (calls_.empty()) return true;
  const Histogram pooled = PooledHistory(now);
  if (pooled.total_weight() <= 0) return true;
  return ChernoffAdmit(pooled, static_cast<std::int64_t>(calls_.size()),
                       view.capacity_bps,
                       options_.target_failure_probability,
                       options_.recorder, now);
}

bool MemoryPolicy::AdmitAtRung(double now, const sim::LinkView& view,
                               double rung_rate_bps, std::size_t rung) {
  if (rung == 0) return Admit(now, view, rung_rate_bps);
  if (calls_.empty()) return true;
  const Histogram pooled = PooledHistory(now);
  if (pooled.total_weight() <= 0) return true;
  return ChernoffAdmitDowngraded(
      pooled, static_cast<std::int64_t>(calls_.size()), view.capacity_bps,
      rung_rate_bps, rung, options_.target_failure_probability,
      options_.recorder, now);
}

void MemoryPolicy::OnAdmitted(double now, std::uint64_t call_id,
                              double rate_bps) {
  CallHistory history{Histogram(options_.rate_grid_bps), now, rate_bps};
  calls_.emplace(call_id, std::move(history));
}

void MemoryPolicy::OnRateChange(double now, std::uint64_t call_id,
                                double /*old_rate_bps*/,
                                double new_rate_bps) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  CallHistory& call = it->second;
  const double held = now - call.since;
  if (held > 0) call.levels.AddNearest(call.current_rate, held);
  call.current_rate = new_rate_bps;
  call.since = now;
}

void MemoryPolicy::OnDeparture(double /*now*/, std::uint64_t call_id,
                               double /*rate_bps*/) {
  calls_.erase(call_id);
}

}  // namespace rcbr::admission
