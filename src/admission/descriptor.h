// Traffic descriptors for RCBR calls (Sec. VI).
//
// "Given a renegotiation schedule, we can compute the empirical
// distribution (histogram) of bandwidth requirements throughout the
// lifetime of a call, i.e., the fraction of time p_j that a bandwidth
// level r_j is needed during the call. This distribution can be viewed as
// the traffic descriptor of the call."
#pragma once

#include <vector>

#include "ldev/mgf.h"
#include "util/histogram.h"
#include "util/piecewise.h"

namespace rcbr::admission {

/// The exact empirical bandwidth distribution of a schedule: each distinct
/// rate value with the fraction of slots spent at it.
ldev::DiscreteDistribution DescriptorFromSchedule(
    const PiecewiseConstant& schedule);

/// The same mass snapped onto an explicit rate grid (the estimators work
/// on a shared grid so histograms from different calls merge).
Histogram HistogramFromSchedule(const PiecewiseConstant& schedule,
                                std::vector<double> grid);

/// Pooled descriptor of several schedules (e.g. the profile pool offered
/// to the link), weighted by schedule length.
ldev::DiscreteDistribution PooledDescriptor(
    const std::vector<PiecewiseConstant>& schedules,
    const std::vector<double>& grid);

}  // namespace rcbr::admission
