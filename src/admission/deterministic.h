// Deterministic (worst-case) admission — the paper's foil.
//
// "RCBR belongs to the class of statistical services. ... The advantage
// of a statistical service over a deterministic service is the higher
// statistical multiplexing gain" (Sec. VI). This module implements the
// deterministic side of that comparison: leaky-bucket (sigma, rho)
// envelopes of a workload and the classic lossless FIFO admission rule
// for calls described by them, plus plain peak-rate allocation, so the
// SMG advantage can be measured instead of asserted
// (bench/ablation_deterministic_vs_statistical).
#pragma once

#include <cstdint>
#include <vector>

namespace rcbr::admission {

/// A leaky-bucket traffic envelope: A(t) - A(s) <= sigma + rho (t - s).
struct LeakyBucketDescriptor {
  double sigma_bits = 0;
  double rho_bits_per_slot = 0;
};

/// The tightest bucket depth for a given token rate: sigma(rho) =
/// max over windows of (bits in window - rho * window). Zero when rho
/// is at or above the peak slot rate. O(n^2) worst case but exits each
/// window scan early once the running excess cannot grow — fine for the
/// trace sizes here.
double SigmaForRho(const std::vector<double>& workload_bits,
                   double rho_bits_per_slot);

/// The envelope at a given rate, as a descriptor.
LeakyBucketDescriptor EnvelopeAtRate(const std::vector<double>& workload_bits,
                                     double rho_bits_per_slot);

/// Lossless FIFO admission for homogeneous (sigma, rho) calls on a link
/// of `capacity` with shared buffer `buffer`: the aggregate envelope is
/// (N sigma, N rho), and a FIFO server of rate C bounds the backlog by
/// the aggregate sigma whenever the aggregate rho fits. Hence
///     N_max = floor(min(C / rho, B / sigma)),
/// with the conventions: sigma == 0 removes the buffer constraint and
/// rho == 0 removes the rate constraint.
std::int64_t MaxDeterministicCalls(const LeakyBucketDescriptor& descriptor,
                                   double capacity_bits_per_slot,
                                   double buffer_bits);

/// Peak-rate allocation: floor(C / peak).
std::int64_t MaxPeakRateCalls(double peak_bits_per_slot,
                              double capacity_bits_per_slot);

}  // namespace rcbr::admission
