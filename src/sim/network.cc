#include "sim/network.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/error.h"

namespace rcbr::sim {

namespace {

enum class EventType { kArrival, kRateChange, kDeparture };

struct Event {
  double time = 0;
  std::uint64_t seq = 0;
  EventType type = EventType::kArrival;
  std::size_t class_index = 0;  // for arrivals
  std::uint64_t call_id = 0;
  std::size_t step_index = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct ActiveCall {
  PiecewiseConstant schedule;
  double slot_seconds = 1.0;
  double start_time = 0;
  double rate_bps = 0;
  std::size_t class_index = 0;
  std::vector<std::size_t> route;
};

}  // namespace

NetworkSimResult RunNetworkSim(const std::vector<CallProfile>& profiles,
                               const NetworkSimOptions& options, Rng& rng) {
  Require(!profiles.empty(), "RunNetworkSim: empty profile pool");
  Require(!options.link_capacities_bps.empty(),
          "RunNetworkSim: no links");
  Require(!options.classes.empty(), "RunNetworkSim: no traffic classes");
  Require(options.interval_seconds > 0 && options.sample_intervals > 0,
          "RunNetworkSim: need measurement intervals");
  const std::size_t num_links = options.link_capacities_bps.size();
  for (double c : options.link_capacities_bps) {
    Require(c > 0, "RunNetworkSim: link capacity must be positive");
  }
  for (const RouteClass& cls : options.classes) {
    Require(!cls.candidate_routes.empty(),
            "RunNetworkSim: class without routes");
    Require(cls.arrival_rate_per_s > 0,
            "RunNetworkSim: class arrival rate must be positive");
    Require(cls.profile_index < profiles.size(),
            "RunNetworkSim: profile index out of range");
    for (const auto& route : cls.candidate_routes) {
      Require(!route.empty(), "RunNetworkSim: empty route");
      for (std::size_t link : route) {
        Require(link < num_links, "RunNetworkSim: link index out of range");
      }
    }
  }

  const double end_time =
      options.warmup_seconds +
      options.interval_seconds * static_cast<double>(options.sample_intervals);
  const std::size_t intervals = options.sample_intervals;

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  std::uint64_t next_call_id = 1;
  std::unordered_map<std::uint64_t, ActiveCall> active;
  std::vector<double> reserved(num_links, 0.0);

  obs::Recorder* obs = options.recorder;
  obs::Counter* ctr_offered = obs::FindCounter(obs, "netsim.offered_calls");
  obs::Counter* ctr_blocked = obs::FindCounter(obs, "netsim.blocked_calls");
  obs::Counter* ctr_attempts =
      obs::FindCounter(obs, "netsim.upward_attempts");
  obs::Counter* ctr_failures =
      obs::FindCounter(obs, "netsim.failed_attempts");

  NetworkSimResult result;
  result.per_class.resize(options.classes.size());
  result.mean_link_utilization.assign(num_links, 0.0);
  std::vector<std::vector<std::int64_t>> interval_attempts(
      options.classes.size(), std::vector<std::int64_t>(intervals, 0));
  std::vector<std::vector<std::int64_t>> interval_failures(
      options.classes.size(), std::vector<std::int64_t>(intervals, 0));
  std::vector<double> util_integral(num_links, 0.0);
  double now = 0;

  auto interval_index = [&](double t) -> std::int64_t {
    if (t < options.warmup_seconds) return -1;
    const auto idx = static_cast<std::int64_t>(
        (t - options.warmup_seconds) / options.interval_seconds);
    return idx < static_cast<std::int64_t>(intervals) ? idx : -1;
  };

  auto advance = [&](double to) {
    while (now < to) {
      double seg_end = to;
      if (now < options.warmup_seconds) {
        seg_end = std::min(to, options.warmup_seconds);
      } else {
        const std::int64_t idx = interval_index(now);
        if (idx >= 0) {
          const double boundary =
              options.warmup_seconds +
              options.interval_seconds * static_cast<double>(idx + 1);
          seg_end = std::min(to, boundary);
          for (std::size_t l = 0; l < num_links; ++l) {
            util_integral[l] += reserved[l] * (seg_end - now);
          }
        }
      }
      now = seg_end;
    }
  };

  auto route_fits = [&](const std::vector<std::size_t>& route,
                        double extra_bps) {
    for (std::size_t link : route) {
      if (reserved[link] + extra_bps >
          options.link_capacities_bps[link] + 1e-9) {
        return false;
      }
    }
    return true;
  };

  auto bottleneck_utilization = [&](const std::vector<std::size_t>& route) {
    double worst = 0;
    for (std::size_t link : route) {
      worst = std::max(worst,
                       reserved[link] / options.link_capacities_bps[link]);
    }
    return worst;
  };

  auto push_step_or_departure = [&](std::uint64_t id,
                                    std::size_t next_step_index) {
    const ActiveCall& call = active.at(id);
    const auto& steps = call.schedule.steps();
    if (next_step_index < steps.size()) {
      const double when = call.start_time +
                          static_cast<double>(steps[next_step_index].start) *
                              call.slot_seconds;
      events.push({when, seq++, EventType::kRateChange, 0, id,
                   next_step_index});
    } else {
      const double when =
          call.start_time +
          static_cast<double>(call.schedule.length()) * call.slot_seconds;
      events.push({when, seq++, EventType::kDeparture, 0, id, 0});
    }
  };

  // Seed one arrival per class.
  for (std::size_t c = 0; c < options.classes.size(); ++c) {
    events.push({rng.Exponential(1.0 / options.classes[c].arrival_rate_per_s),
                 seq++, EventType::kArrival, c, 0, 0});
  }

  while (!events.empty()) {
    const Event ev = events.top();
    if (ev.time >= end_time) break;
    events.pop();
    advance(ev.time);

    switch (ev.type) {
      case EventType::kArrival: {
        const std::size_t c = ev.class_index;
        const RouteClass& cls = options.classes[c];
        events.push({now + rng.Exponential(1.0 / cls.arrival_rate_per_s),
                     seq++, EventType::kArrival, c, 0, 0});
        ++result.per_class[c].offered_calls;
        if (ctr_offered != nullptr) ctr_offered->Add();

        const CallProfile& profile = profiles[cls.profile_index];
        const std::int64_t shift =
            rng.UniformInt(0, profile.rates_bps.length() - 1);
        PiecewiseConstant schedule = profile.rates_bps.Rotate(shift);
        const double initial_rate = schedule.steps().front().value;

        // Route selection: feasible candidates only; least-loaded picks
        // the one with the smallest bottleneck utilization.
        const std::vector<std::size_t>* chosen = nullptr;
        double chosen_bottleneck = 2.0;
        for (const auto& route : cls.candidate_routes) {
          if (!route_fits(route, initial_rate)) continue;
          if (!options.least_loaded_routing) {
            chosen = &route;
            break;
          }
          const double bottleneck = bottleneck_utilization(route);
          if (bottleneck < chosen_bottleneck) {
            chosen = &route;
            chosen_bottleneck = bottleneck;
          }
        }
        if (chosen == nullptr) {
          ++result.per_class[c].blocked_calls;
          if (ctr_blocked != nullptr) ctr_blocked->Add();
          obs::Emit(obs, now, obs::EventKind::kAdmitReject, next_call_id,
                    {"class", static_cast<double>(c)},
                    {"rate_bps", initial_rate});
          break;
        }
        const std::uint64_t id = next_call_id++;
        for (std::size_t link : *chosen) reserved[link] += initial_rate;
        active.emplace(id, ActiveCall{std::move(schedule),
                                      profile.slot_seconds, now,
                                      initial_rate, c, *chosen});
        obs::Emit(obs, now, obs::EventKind::kAdmitAccept, id,
                  {"class", static_cast<double>(c)},
                  {"rate_bps", initial_rate},
                  {"hops", static_cast<double>(active.at(id).route.size())});
        push_step_or_departure(id, 1);
        break;
      }
      case EventType::kRateChange: {
        auto it = active.find(ev.call_id);
        if (it == active.end()) break;
        ActiveCall& call = it->second;
        const double new_rate = call.schedule.steps()[ev.step_index].value;
        const double old_rate = call.rate_bps;
        if (new_rate <= old_rate) {
          for (std::size_t link : call.route) {
            reserved[link] -= old_rate - new_rate;
          }
          call.rate_bps = new_rate;
        } else {
          auto& outcome = result.per_class[call.class_index];
          ++outcome.upward_attempts;
          if (ctr_attempts != nullptr) ctr_attempts->Add();
          const std::int64_t idx = interval_index(now);
          if (idx >= 0) {
            ++interval_attempts[call.class_index]
                              [static_cast<std::size_t>(idx)];
          }
          const double delta = new_rate - old_rate;
          if (route_fits(call.route, delta)) {
            for (std::size_t link : call.route) reserved[link] += delta;
            call.rate_bps = new_rate;
            obs::Emit(obs, now, obs::EventKind::kRenegGrant, ev.call_id,
                      {"class", static_cast<double>(call.class_index)},
                      {"old_bps", old_rate}, {"new_bps", new_rate});
          } else {
            ++outcome.failed_attempts;
            if (ctr_failures != nullptr) ctr_failures->Add();
            if (idx >= 0) {
              ++interval_failures[call.class_index]
                                 [static_cast<std::size_t>(idx)];
            }
            obs::Emit(obs, now, obs::EventKind::kRenegDeny, ev.call_id,
                      {"class", static_cast<double>(call.class_index)},
                      {"old_bps", old_rate}, {"new_bps", new_rate});
          }
        }
        push_step_or_departure(ev.call_id, ev.step_index + 1);
        break;
      }
      case EventType::kDeparture: {
        auto it = active.find(ev.call_id);
        if (it == active.end()) break;
        for (std::size_t link : it->second.route) {
          reserved[link] -= it->second.rate_bps;
        }
        obs::Emit(obs, now, obs::EventKind::kCallDeparture, ev.call_id,
                  {"class", static_cast<double>(it->second.class_index)},
                  {"rate_bps", it->second.rate_bps});
        active.erase(it);
        break;
      }
    }
  }
  advance(end_time);

  for (std::size_t c = 0; c < options.classes.size(); ++c) {
    for (std::size_t k = 0; k < intervals; ++k) {
      result.per_class[c].failure_probability.Add(
          interval_attempts[c][k] > 0
              ? static_cast<double>(interval_failures[c][k]) /
                    static_cast<double>(interval_attempts[c][k])
              : 0.0);
    }
  }
  const double span =
      options.interval_seconds * static_cast<double>(intervals);
  for (std::size_t l = 0; l < num_links; ++l) {
    result.mean_link_utilization[l] =
        util_integral[l] / (span * options.link_capacities_bps[l]);
  }
  return result;
}

}  // namespace rcbr::sim
