#include "sim/network.h"

#include "sim/engine/simulation.h"
#include "util/error.h"

namespace rcbr::sim {

NetworkSimResult RunNetworkSim(const std::vector<CallProfile>& profiles,
                               const NetworkSimOptions& options, Rng& rng) {
  Require(!profiles.empty(), "RunNetworkSim: empty profile pool");
  Require(!options.link_capacities_bps.empty(),
          "RunNetworkSim: no links");
  Require(!options.classes.empty(), "RunNetworkSim: no traffic classes");
  Require(options.interval_seconds > 0 && options.sample_intervals > 0,
          "RunNetworkSim: need measurement intervals");
  const std::size_t num_links = options.link_capacities_bps.size();
  for (double c : options.link_capacities_bps) {
    Require(c > 0, "RunNetworkSim: link capacity must be positive");
  }
  for (const RouteClass& cls : options.classes) {
    Require(!cls.candidate_routes.empty(),
            "RunNetworkSim: class without routes");
    Require(cls.arrival_rate_per_s > 0,
            "RunNetworkSim: class arrival rate must be positive");
    Require(cls.profile_index < profiles.size(),
            "RunNetworkSim: profile index out of range");
    for (const auto& route : cls.candidate_routes) {
      Require(!route.empty(), "RunNetworkSim: empty route");
      for (std::size_t link : route) {
        Require(link < num_links, "RunNetworkSim: link index out of range");
      }
    }
  }

  engine::SimulationOptions sim;
  sim.link_capacities_bps = options.link_capacities_bps;
  sim.classes.reserve(options.classes.size());
  for (const RouteClass& cls : options.classes) {
    engine::TrafficClass tc;
    tc.candidate_routes = cls.candidate_routes;
    tc.arrival_rate_per_s = cls.arrival_rate_per_s;
    tc.profile_index = cls.profile_index;
    sim.classes.push_back(std::move(tc));
  }
  sim.warmup_seconds = options.warmup_seconds;
  sim.sample_intervals = options.sample_intervals;
  sim.interval_seconds = options.interval_seconds;
  sim.least_loaded_routing = options.least_loaded_routing;
  // The legacy network loop admitted with 1e-9 slack to absorb the
  // round-off of stacked reservations; pinned.
  sim.admission_tolerance_bps = 1e-9;
  sim.policy = options.policy;
  sim.recorder = options.recorder;
  sim.metric_prefix = "netsim";
  sim.trace_style = engine::SimulationOptions::TraceStyle::kNetwork;
  sim.expected_peak_calls = options.expected_peak_calls;

  const engine::SimulationResult r = engine::RunSimulation(profiles, sim, rng);

  NetworkSimResult result;
  result.per_class.resize(options.classes.size());
  for (std::size_t c = 0; c < options.classes.size(); ++c) {
    const engine::ClassTotals& totals = r.per_class[c];
    ClassOutcome& outcome = result.per_class[c];
    outcome.offered_calls = totals.offered_calls;
    outcome.blocked_calls = totals.blocked_calls;
    outcome.upward_attempts = totals.upward_attempts;
    outcome.failed_attempts = totals.failed_attempts;
    for (std::size_t k = 0; k < options.sample_intervals; ++k) {
      outcome.failure_probability.Add(
          totals.interval_attempts[k] > 0
              ? static_cast<double>(totals.interval_failures[k]) /
                    static_cast<double>(totals.interval_attempts[k])
              : 0.0);
    }
  }
  const double span = options.interval_seconds *
                      static_cast<double>(options.sample_intervals);
  result.mean_link_utilization.assign(num_links, 0.0);
  for (std::size_t l = 0; l < num_links; ++l) {
    result.mean_link_utilization[l] =
        r.util_total[l] / (span * options.link_capacities_bps[l]);
  }
  return result;
}

}  // namespace rcbr::sim
