#include "sim/min_rate.h"

#include "util/error.h"
#include "util/search.h"

namespace rcbr::sim {

OnlineStats EstimateLoss(
    const std::function<double(double, std::uint64_t)>& sample, double c,
    const MinRateOptions& options) {
  ReplicationController controller(options.relative_precision,
                                   options.min_replications,
                                   options.max_replications);
  std::uint64_t k = 0;
  while (!controller.Done(options.target)) {
    controller.Add(sample(c, k++));
  }
  return controller.stats();
}

double FindMinRate(const std::function<double(double, std::uint64_t)>& sample,
                   double lo, double hi, const MinRateOptions& options) {
  Require(lo <= hi, "FindMinRate: lo > hi");
  Require(options.target > 0, "FindMinRate: target must be positive");
  auto feasible = [&](double c) {
    const OnlineStats stats = EstimateLoss(sample, c, options);
    return stats.mean() <= options.target;
  };
  SearchOptions search;
  search.relative_tolerance = options.rate_tolerance;
  search.max_iterations = options.max_search_steps;
  return MinFeasible(lo, hi, feasible, search);
}

}  // namespace rcbr::sim
