#include "sim/cell_mux.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::sim {

double CellMuxResult::Tail(std::int64_t q) const {
  if (q <= 0) return 1.0;
  double tail = 0;
  for (std::size_t i = static_cast<std::size_t>(q);
       i < queue_distribution.size(); ++i) {
    tail += queue_distribution[i];
  }
  return tail;
}

CellMuxResult SimulateCellMux(std::int64_t n_streams, std::int64_t period,
                              std::int64_t replications, Rng& rng,
                              obs::Recorder* recorder) {
  Require(n_streams >= 1, "SimulateCellMux: need at least one stream");
  Require(period >= n_streams,
          "SimulateCellMux: utilization must be <= 1 (period >= streams)");
  Require(replications >= 1, "SimulateCellMux: need replications");

  std::vector<double> histogram;
  double queue_sum = 0;
  std::int64_t samples = 0;
  std::int64_t max_queue = 0;
  std::vector<std::int64_t> arrivals(static_cast<std::size_t>(period));
  for (std::int64_t rep = 0; rep < replications; ++rep) {
    std::fill(arrivals.begin(), arrivals.end(), 0);
    for (std::int64_t s = 0; s < n_streams; ++s) {
      ++arrivals[static_cast<std::size_t>(rng.UniformInt(0, period - 1))];
    }
    // Two passes over the period: the first warms the queue to its
    // periodic steady state (the pattern repeats every period), the
    // second is measured.
    std::int64_t queue = 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::int64_t t = 0; t < period; ++t) {
        queue += arrivals[static_cast<std::size_t>(t)];
        if (queue > 0) --queue;  // unit service per cell slot
        if (pass == 1) {
          if (static_cast<std::size_t>(queue) >= histogram.size()) {
            histogram.resize(static_cast<std::size_t>(queue) + 1, 0.0);
          }
          ++histogram[static_cast<std::size_t>(queue)];
          queue_sum += static_cast<double>(queue);
          ++samples;
          max_queue = std::max(max_queue, queue);
        }
      }
    }
  }
  CellMuxResult result;
  for (double& h : histogram) h /= static_cast<double>(samples);
  result.queue_distribution = std::move(histogram);
  result.mean_queue_cells = queue_sum / static_cast<double>(samples);
  result.max_queue_cells = max_queue;
  if constexpr (obs::kEnabled) {
    obs::Count(recorder, "cellmux.replications", replications);
    obs::Count(recorder, "cellmux.measured_slots", samples);
    obs::SetGauge(recorder, "cellmux.max_queue_cells",
                  static_cast<double>(max_queue));
    obs::SetGauge(recorder, "cellmux.mean_queue_cells",
                  result.mean_queue_cells);
  }
  return result;
}

namespace {

/// log P(Bin(n, p) >= k) upper bound via the Chernoff/KL form; exact 0
/// when k > n.
double LogBinomialTailBound(std::int64_t n, double p, std::int64_t k) {
  if (k <= 0) return 0.0;  // log 1
  if (k > n) return -1e300;
  const double a = static_cast<double>(k) / static_cast<double>(n);
  if (a <= p) return 0.0;
  // KL(a || p) = a ln(a/p) + (1-a) ln((1-a)/(1-p)).
  double kl = a * std::log(a / p);
  if (a < 1.0) kl += (1.0 - a) * std::log((1.0 - a) / (1.0 - p));
  return -static_cast<double>(n) * kl;
}

}  // namespace

double CellMuxTailBound(std::int64_t n_streams, std::int64_t period,
                        std::int64_t q_cells) {
  Require(n_streams >= 1 && period >= n_streams,
          "CellMuxTailBound: need 1 <= streams <= period");
  if (q_cells <= 0) return 1.0;
  // Q >= q implies some window of w slots received at least w + q cells.
  double total = 0;
  for (std::int64_t w = 1; w <= period; ++w) {
    const double p = static_cast<double>(w) / static_cast<double>(period);
    total += std::exp(
        LogBinomialTailBound(n_streams, p, w + q_cells));
  }
  return std::min(total, 1.0);
}

std::int64_t CellsForLossTarget(std::int64_t n_streams, std::int64_t period,
                                double loss_target) {
  Require(loss_target > 0 && loss_target < 1,
          "CellsForLossTarget: target in (0,1)");
  for (std::int64_t q = 1; q <= n_streams; ++q) {
    if (CellMuxTailBound(n_streams, period, q) <= loss_target) return q;
  }
  return n_streams;  // Q can never exceed N in an N*D/D/1 queue
}

}  // namespace rcbr::sim
