// Replaying a FaultPlan outside the discrete-event engine.
//
// FaultTimeline (fault_injector.h) interprets a plan against the sim
// engine's clock. The socket daemon (src/net) has no engine: its time
// axis is the client's logical slot counter, stamped onto every wire
// frame, and its enforcement mechanism is wall-clock deadline timers.
// WallClockSchedule is the adapter between the two worlds: it compiles a
// FaultPlan's sim-second schedule into the tick (slot) domain once, up
// front, and then answers point queries — what loss probability, delay,
// and link state are in force at tick T, and which controller crashes
// fire in a tick interval — with the same combination semantics as
// FaultTimeline (overlapping bursts combine by max; per-link down/up
// pairs; crashes are instants).
//
// Because the compiled schedule is pure data keyed on ticks (not wall
// time), an impairment proxy that drives it from frame slot stamps makes
// the *outcomes* of wall-clock deadline races deterministic: a frame is
// dropped or forwarded by tick arithmetic, and the deadline timer merely
// detects the loss.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault/fault_plan.h"

namespace rcbr::sim::fault {

class WallClockSchedule {
 public:
  /// Compiles `plan` (times in sim seconds) into ticks via
  /// `ticks_per_second` (> 0, finite). Tick T covers sim time
  /// [T/tps, (T+1)/tps); an event at time t lands on tick
  /// floor(t * tps). Zero-duration bursts are dropped (they cover no
  /// tick). The plan is copied out; no reference is kept.
  WallClockSchedule(const FaultPlan& plan, double ticks_per_second);

  /// Combined burst loss probability in force at `tick` (max over
  /// active bursts, like FaultTimeline::RecomputeConditions).
  double LossProbabilityAt(std::int64_t tick) const;

  /// Combined extra one-way delay in force at `tick`, seconds.
  double ExtraDelaySecondsAt(std::int64_t tick) const;

  /// True when `link` is inside a down window at `tick`.
  bool LinkDownAt(std::size_t link, std::int64_t tick) const;

  /// Controller crashes with trigger tick in (`after`, `upto`], in
  /// schedule order. Pass after = -1 to include tick 0.
  std::vector<std::size_t> CrashesIn(std::int64_t after,
                                     std::int64_t upto) const;

  /// First tick at or after which no impairment is ever active again
  /// (exclusive end of the schedule; 0 for an empty plan).
  std::int64_t end_tick() const { return end_tick_; }

  std::size_t burst_count() const { return bursts_.size(); }
  std::size_t down_window_count() const { return downs_.size(); }
  std::size_t crash_count() const { return crashes_.size(); }

 private:
  struct BurstWindow {
    std::int64_t begin = 0;  // inclusive
    std::int64_t end = 0;    // exclusive
    double loss_probability = 0;
    double extra_delay_s = 0;
  };
  struct DownWindow {
    std::int64_t begin = 0;  // inclusive
    std::int64_t end = 0;    // exclusive; unpaired kLinkDown = forever
    std::size_t link = 0;
  };
  struct Crash {
    std::int64_t tick = 0;
    std::size_t link = 0;
  };

  std::vector<BurstWindow> bursts_;
  std::vector<DownWindow> downs_;
  std::vector<Crash> crashes_;
  std::int64_t end_tick_ = 0;
};

}  // namespace rcbr::sim::fault
