// Interpreting a FaultPlan against a running simulation.
//
// FaultTimeline is the engine-free core: a cursor over the plan that the
// owner advances along simulation time. As it crosses events it
//  * opens/closes RM-cell loss/delay bursts, maintaining a single
//    ChannelConditions the signaling channels read per cell (overlapping
//    bursts combine by max, so closing one burst cannot erase another);
//  * flips per-link up/down state and notifies the owner via callbacks;
//  * reports controller crashes via a callback (the owner wipes the port
//    and drives the resync repair — the timeline never touches ports
//    itself, keeping the repair path explicit and testable).
//
// FaultInjector adapts the timeline to the unified engine: it schedules
// one engine event per plan entry (and per burst end), each of which just
// advances the timeline to the engine clock. Injectors are armed before
// arrival seeding, so a fault at time t fires before any same-time call
// event — a fixed order, which is all determinism needs.
//
// Nothing here draws randomness: the plan is fixed data, so a run with a
// given plan is as deterministic as one without.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/recorder.h"
#include "signaling/lossy_channel.h"
#include "sim/engine/engine.h"
#include "sim/fault/fault_plan.h"

namespace rcbr::sim::fault {

struct FaultCallbacks {
  std::function<void(std::size_t link, double now)> on_link_down;
  std::function<void(std::size_t link, double now)> on_link_up;
  std::function<void(std::size_t link, double now)> on_controller_crash;
};

struct FaultStats {
  std::int64_t bursts = 0;
  std::int64_t link_failures = 0;
  std::int64_t link_repairs = 0;
  std::int64_t crashes = 0;
};

class FaultTimeline {
 public:
  /// `plan` is borrowed and must outlive the timeline. Link events must
  /// target links < `num_links`.
  FaultTimeline(const FaultPlan* plan, std::size_t num_links,
                obs::Recorder* recorder = nullptr);

  void set_callbacks(FaultCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  /// Applies every event with time <= now, in schedule order (burst ends
  /// interleave at their expiry times). Idempotent per event; `now` must
  /// not go backwards.
  void AdvanceTo(double now);

  /// The channel impairment currently in force. Stable address: wire it
  /// into LossyChannelOptions::conditions once and it stays fresh.
  const signaling::ChannelConditions& conditions() const {
    return conditions_;
  }

  bool link_up(std::size_t link) const { return link_up_[link]; }
  std::size_t num_links() const { return link_up_.size(); }
  const FaultPlan* plan() const { return plan_; }

  /// Earliest unapplied event or burst-end time (+infinity when drained).
  double NextEventTime() const;

  const FaultStats& stats() const { return stats_; }

 private:
  struct ActiveBurst {
    double end_s;
    double loss_probability;
    double extra_delay_s;
  };

  void Apply(const FaultEvent& event, double now);
  void ExpireBursts(double now);
  void RecomputeConditions();

  const FaultPlan* plan_;
  std::size_t cursor_ = 0;
  std::vector<ActiveBurst> active_bursts_;
  signaling::ChannelConditions conditions_;
  std::vector<bool> link_up_;
  FaultCallbacks callbacks_;
  FaultStats stats_;
  obs::Recorder* obs_ = nullptr;
};

/// Hooks a FaultTimeline into the engine's event loop: every plan event
/// (and burst expiry) gets an engine event that advances the timeline.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan* plan, engine::Engine* engine,
                std::size_t num_links, obs::Recorder* recorder = nullptr);

  /// Schedules the engine events. Call once, before seeding the rest of
  /// the simulation, so same-time faults fire first.
  void Arm(FaultCallbacks callbacks);

  FaultTimeline& timeline() { return timeline_; }
  const FaultTimeline& timeline() const { return timeline_; }

 private:
  engine::Engine* engine_;
  FaultTimeline timeline_;
  bool armed_ = false;
};

}  // namespace rcbr::sim::fault
