#include "sim/fault/fault_plan.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::sim::fault {

namespace {

void ValidateEvent(const FaultEvent& event) {
  Require(!std::isnan(event.time_s) && event.time_s >= 0,
          "FaultPlan: event time must be >= 0");
  Require(!std::isnan(event.duration_s) && event.duration_s >= 0,
          "FaultPlan: negative burst duration");
  Require(!std::isnan(event.loss_probability) &&
              event.loss_probability >= 0 && event.loss_probability <= 1,
          "FaultPlan: burst loss probability must be in [0,1]");
  Require(!std::isnan(event.extra_delay_s) && event.extra_delay_s >= 0,
          "FaultPlan: negative burst delay");
}

void ValidateOptions(const FaultPlanOptions& options) {
  Require(options.horizon_s >= 0, "FaultPlan: negative horizon");
  Require(options.num_links > 0, "FaultPlan: need at least one link");
  Require(options.burst_rate_per_s >= 0 &&
              options.link_failure_rate_per_s >= 0 &&
              options.crash_rate_per_s >= 0,
          "FaultPlan: negative fault rate");
  Require(options.burst_duration_s >= 0, "FaultPlan: negative duration");
  Require(options.burst_loss_probability >= 0 &&
              options.burst_loss_probability <= 1,
          "FaultPlan: burst loss probability must be in [0,1]");
  Require(options.burst_extra_delay_s >= 0, "FaultPlan: negative delay");
  Require(options.link_downtime_s >= 0, "FaultPlan: negative downtime");
}

}  // namespace

FaultPlan FaultPlan::Generate(const FaultPlanOptions& options, Rng& rng) {
  ValidateOptions(options);
  std::vector<FaultEvent> events;
  if (options.burst_rate_per_s > 0) {
    double t = rng.Exponential(1.0 / options.burst_rate_per_s);
    while (t < options.horizon_s) {
      FaultEvent e;
      e.time_s = t;
      e.kind = FaultKind::kRmLossBurst;
      e.duration_s = options.burst_duration_s;
      e.loss_probability = options.burst_loss_probability;
      e.extra_delay_s = options.burst_extra_delay_s;
      events.push_back(e);
      t += rng.Exponential(1.0 / options.burst_rate_per_s);
    }
  }
  if (options.link_failure_rate_per_s > 0) {
    for (std::size_t link = 0; link < options.num_links; ++link) {
      double t = rng.Exponential(1.0 / options.link_failure_rate_per_s);
      while (t < options.horizon_s) {
        events.push_back({t, FaultKind::kLinkDown, link, 0, 0, 0});
        const double up = t + options.link_downtime_s;
        events.push_back({up, FaultKind::kLinkUp, link, 0, 0, 0});
        t = up + rng.Exponential(1.0 / options.link_failure_rate_per_s);
      }
    }
  }
  if (options.crash_rate_per_s > 0) {
    for (std::size_t link = 0; link < options.num_links; ++link) {
      double t = rng.Exponential(1.0 / options.crash_rate_per_s);
      while (t < options.horizon_s) {
        events.push_back({t, FaultKind::kControllerCrash, link, 0, 0, 0});
        t += rng.Exponential(1.0 / options.crash_rate_per_s);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  FaultPlan plan;
  plan.events_ = std::move(events);
  return plan;
}

void FaultPlan::Add(const FaultEvent& event) {
  ValidateEvent(event);
  events_.push_back(event);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
}

bool FaultPlan::has_bursts() const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kRmLossBurst) return true;
  }
  return false;
}

std::size_t FaultPlan::max_link() const {
  std::size_t worst = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultKind::kRmLossBurst) worst = std::max(worst, e.link);
  }
  return worst;
}

}  // namespace rcbr::sim::fault
