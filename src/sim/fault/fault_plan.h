// Deterministic fault schedules.
//
// A FaultPlan is a time-ordered list of fault events — RM-cell loss/delay
// bursts on the signaling channel, link failure/repair pairs, and port
// controller crashes — fixed before the simulation starts. Plans are
// either hand-built (Add) or drawn from a seeded Rng (Generate), so a
// sweep point that derives its plan from the usual
// Rng::Stream(base_seed, point_index) split gets the same faults at every
// thread count: faults are inputs to the determinism contract
// (docs/algorithms.md §7), not perturbations of it.
//
// The plan is pure data. FaultTimeline/FaultInjector (fault_injector.h)
// interpret it against a running simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace rcbr::sim::fault {

enum class FaultKind : std::uint8_t {
  /// Window of elevated RM-cell loss and delivery delay on the signaling
  /// channel ([time, time + duration)).
  kRmLossBurst,
  /// Link goes down at `time`: admissions and rate increases across it
  /// are blocked, active calls must re-route or drop.
  kLinkDown,
  /// Link repaired.
  kLinkUp,
  /// The link's port controller crashes and restarts with empty tables;
  /// the absolute-rate resync repairs it.
  kControllerCrash,
};

struct FaultEvent {
  double time_s = 0;
  FaultKind kind = FaultKind::kRmLossBurst;
  /// Target link index (kLinkDown/kLinkUp/kControllerCrash; ignored for
  /// bursts, which impair the whole signaling channel).
  std::size_t link = 0;
  /// Burst length, seconds (kRmLossBurst only).
  double duration_s = 0;
  /// Loss probability added to the channel's base loss during the burst
  /// (clamped so the effective probability never exceeds 1).
  double loss_probability = 0;
  /// One-way delivery delay added during the burst, seconds.
  double extra_delay_s = 0;
};

/// Knobs for Generate: Poisson arrivals per fault category over a fixed
/// horizon. Any rate left at 0 generates no events of that category.
struct FaultPlanOptions {
  double horizon_s = 0;
  /// Links the plan may target (link/crash events draw from [0, n)).
  std::size_t num_links = 1;

  double burst_rate_per_s = 0;
  double burst_duration_s = 1.0;
  double burst_loss_probability = 1.0;
  double burst_extra_delay_s = 0;

  /// Per-link failure process; each failure is paired with a kLinkUp
  /// `link_downtime_s` later, and the next failure is drawn after the
  /// repair (no overlapping outages on one link).
  double link_failure_rate_per_s = 0;
  double link_downtime_s = 5.0;

  /// Per-link controller crash process.
  double crash_rate_per_s = 0;
};

class FaultPlan {
 public:
  /// Draws a plan from `rng` (callers pass a dedicated stream, e.g.
  /// SweepContext::MakeRng(substream)). Deterministic: the draw order is
  /// bursts, then per-link failures, then per-link crashes, and the
  /// merged schedule is stable-sorted by time.
  static FaultPlan Generate(const FaultPlanOptions& options, Rng& rng);

  /// Appends one event, keeping the schedule time-sorted (stable, so
  /// same-time events fire in insertion order). Validates the fields.
  void Add(const FaultEvent& event);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  bool has_bursts() const;
  /// Largest link index any event targets (0 when empty) — for
  /// validating a plan against a simulation's link count.
  std::size_t max_link() const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace rcbr::sim::fault
