#include "sim/fault/wall_timeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace rcbr::sim::fault {

namespace {

std::int64_t ToTick(double time_s, double tps) {
  const double tick = std::floor(time_s * tps);
  Require(tick < 9.2e18, "WallClockSchedule: event time overflows ticks");
  return static_cast<std::int64_t>(tick);
}

}  // namespace

WallClockSchedule::WallClockSchedule(const FaultPlan& plan,
                                     double ticks_per_second) {
  Require(std::isfinite(ticks_per_second) && ticks_per_second > 0,
          "WallClockSchedule: ticks_per_second must be positive and finite");
  // Open link-down window per link, closed by the matching kLinkUp.
  std::vector<std::size_t> open_down;  // index into downs_, or npos
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  open_down.assign(plan.max_link() + 1, kNone);
  for (const FaultEvent& event : plan.events()) {
    const std::int64_t tick = ToTick(event.time_s, ticks_per_second);
    switch (event.kind) {
      case FaultKind::kRmLossBurst: {
        const std::int64_t end =
            ToTick(event.time_s + event.duration_s, ticks_per_second);
        if (end <= tick) break;  // covers no whole tick
        bursts_.push_back(
            {tick, end, event.loss_probability, event.extra_delay_s});
        end_tick_ = std::max(end_tick_, end);
        break;
      }
      case FaultKind::kLinkDown: {
        if (open_down[event.link] != kNone) break;  // already down
        open_down[event.link] = downs_.size();
        downs_.push_back({tick,
                          std::numeric_limits<std::int64_t>::max(),
                          event.link});
        break;
      }
      case FaultKind::kLinkUp: {
        const std::size_t idx = open_down[event.link];
        if (idx == kNone) break;  // spurious repair
        downs_[idx].end = std::max(tick, downs_[idx].begin);
        end_tick_ = std::max(end_tick_, downs_[idx].end);
        open_down[event.link] = kNone;
        break;
      }
      case FaultKind::kControllerCrash: {
        crashes_.push_back({tick, event.link});
        end_tick_ = std::max(end_tick_, tick + 1);
        break;
      }
    }
  }
  // A down window never repaired impairs forever; end_tick_ stays at the
  // last *finite* edge, which is what callers use to size runs.
}

double WallClockSchedule::LossProbabilityAt(std::int64_t tick) const {
  double worst = 0;
  for (const BurstWindow& w : bursts_) {
    if (tick >= w.begin && tick < w.end) {
      worst = std::max(worst, w.loss_probability);
    }
  }
  return worst < 1.0 ? worst : 1.0;
}

double WallClockSchedule::ExtraDelaySecondsAt(std::int64_t tick) const {
  double worst = 0;
  for (const BurstWindow& w : bursts_) {
    if (tick >= w.begin && tick < w.end) {
      worst = std::max(worst, w.extra_delay_s);
    }
  }
  return worst;
}

bool WallClockSchedule::LinkDownAt(std::size_t link,
                                   std::int64_t tick) const {
  for (const DownWindow& w : downs_) {
    if (w.link == link && tick >= w.begin && tick < w.end) return true;
  }
  return false;
}

std::vector<std::size_t> WallClockSchedule::CrashesIn(
    std::int64_t after, std::int64_t upto) const {
  std::vector<std::size_t> fired;
  for (const Crash& c : crashes_) {
    if (c.tick > after && c.tick <= upto) fired.push_back(c.link);
  }
  return fired;
}

}  // namespace rcbr::sim::fault
