#include "sim/fault/fault_injector.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace rcbr::sim::fault {

FaultTimeline::FaultTimeline(const FaultPlan* plan, std::size_t num_links,
                             obs::Recorder* recorder)
    : plan_(plan), link_up_(num_links, true), obs_(recorder) {
  Require(plan != nullptr, "FaultTimeline: null plan");
  Require(num_links > 0, "FaultTimeline: need at least one link");
  Require(plan->empty() || plan->max_link() < num_links,
          "FaultTimeline: plan targets a link the simulation lacks");
}

void FaultTimeline::RecomputeConditions() {
  double loss = 0;
  double delay = 0;
  for (const ActiveBurst& burst : active_bursts_) {
    loss = std::max(loss, burst.loss_probability);
    delay = std::max(delay, burst.extra_delay_s);
  }
  conditions_.extra_loss_probability = loss;
  conditions_.extra_delay_s = delay;
}

void FaultTimeline::ExpireBursts(double now) {
  bool changed = false;
  for (std::size_t i = 0; i < active_bursts_.size();) {
    if (active_bursts_[i].end_s <= now) {
      active_bursts_.erase(active_bursts_.begin() + i);
      changed = true;
    } else {
      ++i;
    }
  }
  if (changed) RecomputeConditions();
}

void FaultTimeline::Apply(const FaultEvent& event, double now) {
  switch (event.kind) {
    case FaultKind::kRmLossBurst: {
      active_bursts_.push_back({event.time_s + event.duration_s,
                                event.loss_probability,
                                event.extra_delay_s});
      RecomputeConditions();
      ++stats_.bursts;
      if constexpr (obs::kEnabled) {
        obs::Count(obs_, "fault.bursts");
        obs::Emit(obs_, event.time_s, obs::EventKind::kFaultBurst, 0,
                  {"loss", event.loss_probability},
                  {"delay_s", event.extra_delay_s},
                  {"duration_s", event.duration_s});
      }
      break;
    }
    case FaultKind::kLinkDown: {
      if (!link_up_[event.link]) break;  // idempotent on manual plans
      link_up_[event.link] = false;
      ++stats_.link_failures;
      if constexpr (obs::kEnabled) {
        obs::Count(obs_, "fault.link_failures");
        obs::Emit(obs_, event.time_s, obs::EventKind::kLinkDown, event.link);
        // Postmortem: freeze the recent-event ring at the failure (the
        // link_down event itself is the last ring entry).
        obs::TriggerFlight(obs_, event.time_s, obs::EventKind::kLinkDown,
                           event.link);
      }
      if (callbacks_.on_link_down) callbacks_.on_link_down(event.link, now);
      break;
    }
    case FaultKind::kLinkUp: {
      if (link_up_[event.link]) break;
      link_up_[event.link] = true;
      ++stats_.link_repairs;
      if constexpr (obs::kEnabled) {
        obs::Count(obs_, "fault.link_repairs");
        obs::Emit(obs_, event.time_s, obs::EventKind::kLinkUp, event.link);
      }
      if (callbacks_.on_link_up) callbacks_.on_link_up(event.link, now);
      break;
    }
    case FaultKind::kControllerCrash: {
      ++stats_.crashes;
      if constexpr (obs::kEnabled) {
        obs::Count(obs_, "fault.crashes");
        obs::Emit(obs_, event.time_s, obs::EventKind::kControllerRestart,
                  event.link);
        obs::TriggerFlight(obs_, event.time_s,
                           obs::EventKind::kControllerRestart, event.link);
      }
      if (callbacks_.on_controller_crash) {
        callbacks_.on_controller_crash(event.link, now);
      }
      break;
    }
  }
}

void FaultTimeline::AdvanceTo(double now) {
  const std::vector<FaultEvent>& events = plan_->events();
  for (;;) {
    // Interleave burst expiries with scheduled events so conditions drop
    // at the right time even between events.
    double next_end = std::numeric_limits<double>::infinity();
    for (const ActiveBurst& burst : active_bursts_) {
      next_end = std::min(next_end, burst.end_s);
    }
    const double next_event = cursor_ < events.size()
                                  ? events[cursor_].time_s
                                  : std::numeric_limits<double>::infinity();
    if (next_end <= next_event && next_end <= now) {
      ExpireBursts(next_end);
      continue;
    }
    if (next_event <= now) {
      Apply(events[cursor_], now);
      ++cursor_;
      continue;
    }
    break;
  }
}

double FaultTimeline::NextEventTime() const {
  double next = std::numeric_limits<double>::infinity();
  const std::vector<FaultEvent>& events = plan_->events();
  if (cursor_ < events.size()) next = events[cursor_].time_s;
  for (const ActiveBurst& burst : active_bursts_) {
    next = std::min(next, burst.end_s);
  }
  return next;
}

FaultInjector::FaultInjector(const FaultPlan* plan, engine::Engine* engine,
                             std::size_t num_links, obs::Recorder* recorder)
    : engine_(engine), timeline_(plan, num_links, recorder) {
  Require(engine != nullptr, "FaultInjector: null engine");
}

void FaultInjector::Arm(FaultCallbacks callbacks) {
  Require(!armed_, "FaultInjector: already armed");
  armed_ = true;
  timeline_.set_callbacks(std::move(callbacks));
  for (const FaultEvent& event : timeline_.plan()->events()) {
    engine_->At(event.time_s,
                [this] { timeline_.AdvanceTo(engine_->now()); });
    if (event.kind == FaultKind::kRmLossBurst && event.duration_s > 0) {
      engine_->At(event.time_s + event.duration_s,
                  [this] { timeline_.AdvanceTo(engine_->now()); });
    }
  }
}

}  // namespace rcbr::sim::fault
