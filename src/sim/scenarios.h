// The three multiplexing scenarios of Fig. 3.
//
// (a) static CBR: each source has a private buffer B and a fixed drain
//     rate; no multiplexing between sources.
// (b) unrestricted sharing: all sources feed one server of rate N*c with a
//     shared buffer N*B — the maximum achievable statistical multiplexing
//     gain for the given sources.
// (c) RCBR: each source is smoothed into a stepwise-CBR stream by a
//     private buffer B and the stepwise streams share a *bufferless* link;
//     a renegotiation to a higher rate that cannot be fully granted leaves
//     the source with "whatever bandwidth remains" until capacity frees
//     up, and its private buffer absorbs (or loses) the difference.
//
// Units: workloads are per-slot bit amounts; rates are bits per slot;
// buffers are bits.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fluid_queue.h"
#include "util/piecewise.h"

namespace rcbr::sim {

/// Scenario (a): one source, private buffer, constant drain rate.
DrainResult CbrScenario(const std::vector<double>& arrival_bits,
                        double rate_bits_per_slot, double buffer_bits);

/// Scenario (b): sum of all workloads into one queue with the given total
/// rate and total (shared) buffer. All workloads must have equal length.
DrainResult SharedBufferScenario(
    const std::vector<std::vector<double>>& arrivals,
    double total_rate_bits_per_slot, double total_buffer_bits);

/// Per-source outcome of the RCBR scenario.
struct RcbrSourceOutcome {
  double arrived_bits = 0;
  double lost_bits = 0;
  double max_occupancy_bits = 0;
  std::int64_t renegotiations = 0;        // rate-change attempts
  std::int64_t failed_renegotiations = 0; // attempts not granted in full
  double deficit_slots = 0;               // slots spent with grant < request
};

/// Aggregate outcome of the RCBR scenario.
struct RcbrMuxResult {
  std::vector<RcbrSourceOutcome> per_source;

  double arrived_bits() const;
  double lost_bits() const;
  double loss_fraction() const;
  std::int64_t renegotiations() const;
  std::int64_t failed_renegotiations() const;
  /// Fraction of renegotiation attempts that were not granted in full.
  double failure_fraction() const;
};

/// Scenario (c). `requested_rates[i]` is source i's stepwise-CBR schedule
/// (bits/slot) over the same slots as `arrivals[i]`. The link is
/// bufferless with capacity `capacity_bits_per_slot`; each source has a
/// private buffer of `buffer_bits`.
///
/// Grant rules (Sec. V-B): decreases always succeed and free capacity
/// immediately; an increase receives min(request, remaining capacity);
/// sources left in deficit are served FIFO as capacity frees. A source in
/// deficit drains at its granted rate; its private buffer overflow counts
/// as lost bits.
RcbrMuxResult RcbrScenario(const std::vector<std::vector<double>>& arrivals,
                           const std::vector<PiecewiseConstant>& requested_rates,
                           double capacity_bits_per_slot, double buffer_bits);

}  // namespace rcbr::sim
