// Multi-hop call-level simulation (Sec. III-C).
//
// "As the mean number of hops in the network increases, the probability
// of renegotiation failure is likely to increase since each hop is a
// possible point of failure. ... However, if there is a simultaneous
// increase in the number of alternate routes in the network, then load
// balancing at the call level might reduce the load at each hop, thus
// compensating for this increase. This is still an open area for
// research."
//
// RunNetworkSim answers that question experimentally: RCBR calls with
// stepwise-CBR profiles arrive per traffic class, each class owning one
// or more candidate routes over a shared set of links; renegotiations are
// all-or-nothing across the route's links; optional least-loaded routing
// implements the call-level load balancing the paper hypothesizes about.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/recorder.h"
#include "sim/call_sim.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rcbr::sim {

/// One traffic class: an arrival stream of calls with a fixed profile and
/// one or more candidate routes (each a sequence of link indices).
struct RouteClass {
  std::vector<std::vector<std::size_t>> candidate_routes;
  double arrival_rate_per_s = 0;
  /// Index into the profile pool passed to RunNetworkSim.
  std::size_t profile_index = 0;
};

struct NetworkSimOptions {
  std::vector<double> link_capacities_bps;
  std::vector<RouteClass> classes;
  double warmup_seconds = 0;
  std::size_t sample_intervals = 10;
  double interval_seconds = 0;
  /// Pick the candidate route with the smallest bottleneck utilization at
  /// call setup (call-level load balancing); otherwise the first
  /// candidate that fits is used.
  bool least_loaded_routing = false;
  /// Optional admission policy (the same hook RunCallSim takes), e.g. the
  /// Chernoff MBAC estimators. Consulted after route selection with the
  /// chosen route's bottleneck link view: its capacity, its reservation,
  /// and the rates of the calls crossing it. nullptr = capacity-only
  /// admission (the legacy behavior).
  AdmissionPolicy* policy = nullptr;
  /// Optional observability sink: admission and renegotiation events
  /// (time = sim seconds, id = call id, "class" field = class index) and
  /// per-network counters.
  obs::Recorder* recorder = nullptr;
  /// Expected peak concurrent calls; pre-sizes the engine's event queue
  /// and call arena (0 = derive from the offered load). Capacity hint
  /// only — results are identical either way.
  std::size_t expected_peak_calls = 0;
};

struct ClassOutcome {
  std::int64_t offered_calls = 0;
  std::int64_t blocked_calls = 0;
  std::int64_t upward_attempts = 0;
  std::int64_t failed_attempts = 0;
  /// Per-interval failure fraction of this class's upward attempts.
  OnlineStats failure_probability;

  double blocking_probability() const {
    return offered_calls > 0 ? static_cast<double>(blocked_calls) /
                                   static_cast<double>(offered_calls)
                             : 0.0;
  }
  double overall_failure_probability() const {
    return upward_attempts > 0 ? static_cast<double>(failed_attempts) /
                                     static_cast<double>(upward_attempts)
                               : 0.0;
  }
};

struct NetworkSimResult {
  std::vector<ClassOutcome> per_class;
  /// Time-average reserved/capacity per link over the measurement phase.
  std::vector<double> mean_link_utilization;
};

/// Runs the network simulator. Calls reserve on every link of their
/// route; an upward renegotiation succeeds only if every link grants it
/// (otherwise the call keeps its previous rate everywhere).
NetworkSimResult RunNetworkSim(const std::vector<CallProfile>& profiles,
                               const NetworkSimOptions& options, Rng& rng);

}  // namespace rcbr::sim
