// Cell-level multiplexing of CBR streams (the N*D/D/1 queue).
//
// "Because all traffic entering the network is CBR, RCBR requires minimal
// buffering and scheduling support in switches" — minimal, not zero: N
// periodic cell streams with random phases build a small cell-scale queue
// even though each stream is perfectly smooth. This module quantifies
// that queue (the classic N*D/D/1 model: N sources, one cell each per
// period of D cell slots, unit service), so the "some cell level
// buffering" of Fig. 3(c) can be dimensioned:
//  * SimulateCellMux — Monte Carlo over random phasings;
//  * CellMuxTailBound — a rigorous union-of-Chernoff upper bound on
//    P(Q >= q), tight enough for dimensioning;
//  * CellsForLossTarget — smallest buffer whose bound meets a target.
// The punchline (bench/fig_cell_buffer): tens of cells suffice at 95%
// load — versus the ~300 kb *burst*-scale buffer per source.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/recorder.h"
#include "util/rng.h"

namespace rcbr::sim {

struct CellMuxResult {
  /// distribution[q] = fraction of cell slots with queue length == q.
  std::vector<double> queue_distribution;
  double mean_queue_cells = 0;
  std::int64_t max_queue_cells = 0;

  /// Empirical P(Q >= q).
  double Tail(std::int64_t q) const;
};

/// Simulates `n_streams` periodic streams (one cell per `period` slots,
/// i.i.d. uniform phases redrawn each replication) through a unit-rate
/// server for `replications` periods. Requires n_streams <= period
/// (utilization <= 1). With a recorder, records replication/busy-slot
/// counters and a "cellmux.max_queue_cells" gauge.
CellMuxResult SimulateCellMux(std::int64_t n_streams, std::int64_t period,
                              std::int64_t replications, Rng& rng,
                              obs::Recorder* recorder = nullptr);

/// Rigorous upper bound on the stationary P(Q >= q) of the N*D/D/1 queue:
/// a union bound over window sizes w of the binomial tail
/// P(Bin(N, w/D) >= w + q). Returns a value possibly > 1 for tiny q.
double CellMuxTailBound(std::int64_t n_streams, std::int64_t period,
                        std::int64_t q_cells);

/// Smallest buffer (cells) whose tail bound is <= `loss_target`.
std::int64_t CellsForLossTarget(std::int64_t n_streams, std::int64_t period,
                                double loss_target);

}  // namespace rcbr::sim
