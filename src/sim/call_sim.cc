#include "sim/call_sim.h"

#include "sim/engine/simulation.h"
#include "util/error.h"

namespace rcbr::sim {

bool CapacityOnlyPolicy::Admit(double /*now*/, const LinkView& view,
                               double initial_rate_bps) {
  return view.reserved_bps + initial_rate_bps <= view.capacity_bps;
}

CallSimResult RunCallSim(const std::vector<CallProfile>& profile_pool,
                         AdmissionPolicy& policy,
                         const CallSimOptions& options, Rng& rng) {
  Require(!profile_pool.empty(), "RunCallSim: empty profile pool");
  Require(options.capacity_bps > 0, "RunCallSim: capacity must be positive");
  Require(options.arrival_rate_per_s > 0,
          "RunCallSim: arrival rate must be positive");
  Require(options.interval_seconds > 0 && options.sample_intervals > 0,
          "RunCallSim: need measurement intervals");

  engine::SimulationOptions sim;
  sim.link_capacities_bps = {options.capacity_bps};
  engine::TrafficClass cls;
  cls.candidate_routes = {{0}};
  cls.arrival_rate_per_s = options.arrival_rate_per_s;
  cls.uniform_profile_pick = true;
  cls.ladder = options.ladder;
  sim.classes = {cls};
  sim.warmup_seconds = options.warmup_seconds;
  sim.sample_intervals = options.sample_intervals;
  sim.interval_seconds = options.interval_seconds;
  sim.policy = &policy;
  sim.recorder = options.recorder;
  sim.metric_prefix = "callsim";
  sim.trace_style = engine::SimulationOptions::TraceStyle::kSingleLink;
  sim.expected_peak_calls = options.expected_peak_calls;

  const engine::SimulationResult r =
      engine::RunSimulation(profile_pool, sim, rng);
  const engine::ClassTotals& totals = r.per_class.front();

  CallSimResult result;
  result.offered_calls = totals.offered_calls;
  result.blocked_calls = totals.blocked_calls;
  result.upward_attempts = totals.upward_attempts;
  result.failed_attempts = totals.failed_attempts;
  result.downgraded_admits = totals.downgraded_admits;
  result.upgrades = totals.upgrades;
  result.utility_seconds = totals.utility_seconds;
  for (std::size_t k = 0; k < options.sample_intervals; ++k) {
    result.failure_probability.Add(
        totals.interval_attempts[k] > 0
            ? static_cast<double>(totals.interval_failures[k]) /
                  static_cast<double>(totals.interval_attempts[k])
            : 0.0);
    result.utilization.Add(r.util_by_interval[0][k] /
                           (options.interval_seconds * options.capacity_bps));
  }
  return result;
}

}  // namespace rcbr::sim
