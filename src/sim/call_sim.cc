#include "sim/call_sim.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/error.h"

namespace rcbr::sim {

bool CapacityOnlyPolicy::Admit(double /*now*/, const LinkView& view,
                               double initial_rate_bps) {
  return view.reserved_bps + initial_rate_bps <= view.capacity_bps;
}

namespace {

enum class EventType { kArrival, kRateChange, kDeparture };

struct Event {
  double time = 0;
  std::uint64_t seq = 0;  // deterministic tie-break
  EventType type = EventType::kArrival;
  std::uint64_t call_id = 0;
  std::size_t step_index = 0;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct ActiveCall {
  PiecewiseConstant schedule;
  double slot_seconds = 1.0;
  double start_time = 0;
  double rate_bps = 0;
};

}  // namespace

CallSimResult RunCallSim(const std::vector<CallProfile>& profile_pool,
                         AdmissionPolicy& policy,
                         const CallSimOptions& options, Rng& rng) {
  Require(!profile_pool.empty(), "RunCallSim: empty profile pool");
  Require(options.capacity_bps > 0, "RunCallSim: capacity must be positive");
  Require(options.arrival_rate_per_s > 0,
          "RunCallSim: arrival rate must be positive");
  Require(options.interval_seconds > 0 && options.sample_intervals > 0,
          "RunCallSim: need measurement intervals");

  const double end_time =
      options.warmup_seconds +
      options.interval_seconds * static_cast<double>(options.sample_intervals);
  const std::size_t intervals = options.sample_intervals;

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  std::uint64_t next_call_id = 1;
  std::unordered_map<std::uint64_t, ActiveCall> active;

  obs::Recorder* obs = options.recorder;
  obs::Counter* ctr_offered = obs::FindCounter(obs, "callsim.offered_calls");
  obs::Counter* ctr_blocked = obs::FindCounter(obs, "callsim.blocked_calls");
  obs::Counter* ctr_attempts =
      obs::FindCounter(obs, "callsim.upward_attempts");
  obs::Counter* ctr_failures =
      obs::FindCounter(obs, "callsim.failed_attempts");

  CallSimResult result;
  double now = 0;
  double reserved = 0;
  std::vector<double> util_integral(intervals, 0.0);
  std::vector<std::int64_t> interval_attempts(intervals, 0);
  std::vector<std::int64_t> interval_failures(intervals, 0);

  auto interval_index = [&](double t) -> std::int64_t {
    if (t < options.warmup_seconds) return -1;
    const auto idx = static_cast<std::int64_t>(
        (t - options.warmup_seconds) / options.interval_seconds);
    return idx < static_cast<std::int64_t>(intervals) ? idx : -1;
  };

  // Integrates `reserved` forward to time `to`, splitting across interval
  // boundaries so each measurement interval gets its own utilization.
  auto advance = [&](double to) {
    while (now < to) {
      double seg_end = to;
      const std::int64_t idx = interval_index(now);
      if (now < options.warmup_seconds) {
        seg_end = std::min(to, options.warmup_seconds);
      } else if (idx >= 0) {
        const double boundary =
            options.warmup_seconds +
            options.interval_seconds * static_cast<double>(idx + 1);
        seg_end = std::min(to, boundary);
        util_integral[static_cast<std::size_t>(idx)] +=
            reserved * (seg_end - now);
      }
      now = seg_end;
    }
  };

  auto push_step_or_departure = [&](std::uint64_t id,
                                    std::size_t next_step_index) {
    const ActiveCall& call = active.at(id);
    const auto& steps = call.schedule.steps();
    if (next_step_index < steps.size()) {
      const double when =
          call.start_time +
          static_cast<double>(steps[next_step_index].start) *
              call.slot_seconds;
      events.push({when, seq++, EventType::kRateChange, id,
                   next_step_index});
    } else {
      const double when =
          call.start_time +
          static_cast<double>(call.schedule.length()) * call.slot_seconds;
      events.push({when, seq++, EventType::kDeparture, id, 0});
    }
  };

  auto current_rates = [&]() {
    std::vector<double> rates;
    rates.reserve(active.size());
    for (const auto& [id, call] : active) rates.push_back(call.rate_bps);
    return rates;
  };

  // First arrival.
  events.push({rng.Exponential(1.0 / options.arrival_rate_per_s), seq++,
               EventType::kArrival, 0, 0});

  while (!events.empty()) {
    const Event ev = events.top();
    if (ev.time >= end_time) break;
    events.pop();
    advance(ev.time);

    switch (ev.type) {
      case EventType::kArrival: {
        // Schedule the next arrival regardless of the admission outcome.
        events.push({now + rng.Exponential(1.0 / options.arrival_rate_per_s),
                     seq++, EventType::kArrival, 0, 0});
        ++result.offered_calls;
        const std::size_t pick = static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(profile_pool.size()) - 1));
        const CallProfile& profile = profile_pool[pick];
        const std::int64_t shift =
            rng.UniformInt(0, profile.rates_bps.length() - 1);
        PiecewiseConstant schedule = profile.rates_bps.Rotate(shift);
        const double initial_rate = schedule.steps().front().value;

        const std::vector<double> rates = current_rates();
        const LinkView view{options.capacity_bps, reserved, &rates};
        const bool physically_fits =
            reserved + initial_rate <= options.capacity_bps;
        if (ctr_offered != nullptr) ctr_offered->Add();
        if (!physically_fits || !policy.Admit(now, view, initial_rate)) {
          ++result.blocked_calls;
          if (ctr_blocked != nullptr) ctr_blocked->Add();
          obs::Emit(obs, now, obs::EventKind::kAdmitReject, next_call_id,
                    {"rate_bps", initial_rate}, {"reserved_bps", reserved},
                    {"by_capacity", physically_fits ? 0.0 : 1.0});
          break;
        }
        const std::uint64_t id = next_call_id++;
        active.emplace(id, ActiveCall{std::move(schedule),
                                      profile.slot_seconds, now,
                                      initial_rate});
        reserved += initial_rate;
        policy.OnAdmitted(now, id, initial_rate);
        obs::Emit(obs, now, obs::EventKind::kAdmitAccept, id,
                  {"rate_bps", initial_rate}, {"reserved_bps", reserved});
        push_step_or_departure(id, 1);
        break;
      }
      case EventType::kRateChange: {
        auto it = active.find(ev.call_id);
        if (it == active.end()) break;
        ActiveCall& call = it->second;
        const double new_rate =
            call.schedule.steps()[ev.step_index].value;
        const double old_rate = call.rate_bps;
        if (new_rate <= old_rate) {
          reserved -= old_rate - new_rate;
          call.rate_bps = new_rate;
          policy.OnRateChange(now, ev.call_id, old_rate, new_rate);
        } else {
          ++result.upward_attempts;
          if (ctr_attempts != nullptr) ctr_attempts->Add();
          const std::int64_t idx = interval_index(now);
          if (idx >= 0) ++interval_attempts[static_cast<std::size_t>(idx)];
          const double delta = new_rate - old_rate;
          if (reserved + delta <= options.capacity_bps) {
            reserved += delta;
            call.rate_bps = new_rate;
            policy.OnRateChange(now, ev.call_id, old_rate, new_rate);
            obs::Emit(obs, now, obs::EventKind::kRenegGrant, ev.call_id,
                      {"old_bps", old_rate}, {"new_bps", new_rate},
                      {"reserved_bps", reserved});
          } else {
            ++result.failed_attempts;
            if (ctr_failures != nullptr) ctr_failures->Add();
            if (idx >= 0) ++interval_failures[static_cast<std::size_t>(idx)];
            // Full-grant-or-nothing: the call keeps its old reservation.
            obs::Emit(obs, now, obs::EventKind::kRenegDeny, ev.call_id,
                      {"old_bps", old_rate}, {"new_bps", new_rate},
                      {"reserved_bps", reserved});
          }
        }
        push_step_or_departure(ev.call_id, ev.step_index + 1);
        break;
      }
      case EventType::kDeparture: {
        auto it = active.find(ev.call_id);
        if (it == active.end()) break;
        reserved -= it->second.rate_bps;
        policy.OnDeparture(now, ev.call_id, it->second.rate_bps);
        obs::Emit(obs, now, obs::EventKind::kCallDeparture, ev.call_id,
                  {"rate_bps", it->second.rate_bps},
                  {"reserved_bps", reserved});
        active.erase(it);
        break;
      }
    }
  }
  advance(end_time);

  for (std::size_t k = 0; k < intervals; ++k) {
    result.failure_probability.Add(
        interval_attempts[k] > 0
            ? static_cast<double>(interval_failures[k]) /
                  static_cast<double>(interval_attempts[k])
            : 0.0);
    result.utilization.Add(util_integral[k] /
                           (options.interval_seconds * options.capacity_bps));
  }
  return result;
}

}  // namespace rcbr::sim
