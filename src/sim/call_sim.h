// Call-level dynamic simulation for admission control (Sec. VI).
//
// "Each call is a randomly shifted version of a Star Wars RCBR schedule.
// Calls arrive according to a Poisson process of rate lambda. ... as a
// by-product of using RCBR schedules instead of full per-frame traces as
// input, the simulation efficiency is greatly improved, as we only need to
// simulate the renegotiation events instead of each frame."
//
// RunCallSim is exactly that event-driven simulator: Poisson arrivals of
// stepwise-CBR calls on one link, an AdmissionPolicy deciding acceptance,
// full-grant-or-keep-old-rate renegotiation, and per-interval measurement
// of the renegotiation failure probability and link utilization.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/recorder.h"
#include "sim/rate_ladder.h"
#include "util/piecewise.h"
#include "util/rng.h"
#include "util/stats.h"

namespace rcbr::sim {

/// A call's bandwidth profile: a stepwise-CBR rate function (bits/second)
/// over slots of `slot_seconds` each.
struct CallProfile {
  PiecewiseConstant rates_bps;
  double slot_seconds = 1.0;

  double duration_seconds() const {
    return static_cast<double>(rates_bps.length()) * slot_seconds;
  }
};

/// What an admission policy may observe about the link.
struct LinkView {
  double capacity_bps = 0;
  double reserved_bps = 0;
  /// Current reserved rate of every active call (bits/s).
  const std::vector<double>* call_rates = nullptr;
};

/// Admission decisions and system notifications. Implementations live in
/// src/admission; the simulator only sees this interface.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  /// Decide whether to accept a call whose initial reservation is
  /// `initial_rate_bps`. The simulator additionally blocks calls that
  /// would exceed the raw link capacity.
  virtual bool Admit(double now, const LinkView& view,
                     double initial_rate_bps) = 0;

  /// Ladder admission (multi-resolution service): may a call enter at
  /// rung `rung`, whose scaled initial reservation is `rung_rate_bps`?
  /// The simulator asks rung by rung, best first, and grants the first
  /// accepted rung; rung 0 is always the full ask. The default is
  /// scalar-conservative: rung 0 goes through the binary Admit and every
  /// lower rung is refused — so a depth-1 ladder reproduces the scalar
  /// decision bit-for-bit, and policies that do not understand
  /// downgrading never admit below the full ask. The Chernoff MBAC
  /// policies override this with a rate-aware test for rungs > 0.
  virtual bool AdmitAtRung(double now, const LinkView& view,
                           double rung_rate_bps, std::size_t rung) {
    return rung == 0 ? Admit(now, view, rung_rate_bps) : false;
  }

  /// A call was admitted with the given id and initial rate.
  virtual void OnAdmitted(double now, std::uint64_t call_id,
                          double rate_bps) = 0;
  /// A call's reservation changed (successful renegotiation).
  virtual void OnRateChange(double now, std::uint64_t call_id,
                            double old_rate_bps, double new_rate_bps) = 0;
  /// A call left the system.
  virtual void OnDeparture(double now, std::uint64_t call_id,
                           double rate_bps) = 0;
};

/// A policy that admits every call the link can physically hold; the
/// baseline "no admission control beyond capacity".
class CapacityOnlyPolicy final : public AdmissionPolicy {
 public:
  bool Admit(double now, const LinkView& view,
             double initial_rate_bps) override;
  /// The capacity check is rate-dependent, so any rung that physically
  /// fits is admitted (a saturated link downgrades instead of blocking).
  bool AdmitAtRung(double now, const LinkView& view, double rung_rate_bps,
                   std::size_t /*rung*/) override {
    return Admit(now, view, rung_rate_bps);
  }
  void OnAdmitted(double, std::uint64_t, double) override {}
  void OnRateChange(double, std::uint64_t, double, double) override {}
  void OnDeparture(double, std::uint64_t, double) override {}
};

struct CallSimOptions {
  double capacity_bps = 0;
  /// Poisson call arrival rate (calls per second).
  double arrival_rate_per_s = 0;
  /// Simulated time discarded before measurement.
  double warmup_seconds = 0;
  /// Number of measurement intervals; each yields one sample of the
  /// failure probability and of the utilization.
  std::size_t sample_intervals = 10;
  /// Length of one measurement interval (paper: the trace duration).
  double interval_seconds = 0;
  /// Optional observability sink: admission accept/reject, renegotiation
  /// grant/deny, and departure events (time = sim seconds, id = call id;
  /// rejects use the would-be id), plus call/attempt counters.
  obs::Recorder* recorder = nullptr;
  /// Expected peak concurrent calls; pre-sizes the engine's event queue
  /// and call arena (0 = derive from the offered load). Capacity hint
  /// only — results are identical either way.
  std::size_t expected_peak_calls = 0;
  /// Multi-resolution contract carried by every call (empty = scalar;
  /// the depth-1 ladder is pinned byte-identical to scalar). Under
  /// saturation the simulator admits at the deepest feasible rung
  /// instead of blocking, and departures promote downgraded calls back
  /// toward rung 0 in call-id order.
  RateLadder ladder;
};

struct CallSimResult {
  /// Per-interval renegotiation failure fraction (failed upward attempts /
  /// upward attempts).
  OnlineStats failure_probability;
  /// Per-interval time-average of reserved/capacity.
  OnlineStats utilization;

  std::int64_t offered_calls = 0;
  std::int64_t blocked_calls = 0;
  std::int64_t upward_attempts = 0;
  std::int64_t failed_attempts = 0;
  /// Ladder outcomes (0 for scalar and depth-1 contracts).
  std::int64_t downgraded_admits = 0;
  std::int64_t upgrades = 0;
  /// Delivered utility integrated over the measurement window (0 when the
  /// run carries no ladder).
  double utility_seconds = 0;

  double blocking_probability() const {
    return offered_calls > 0 ? static_cast<double>(blocked_calls) /
                                   static_cast<double>(offered_calls)
                             : 0.0;
  }
  double overall_failure_probability() const {
    return upward_attempts > 0 ? static_cast<double>(failed_attempts) /
                                     static_cast<double>(upward_attempts)
                               : 0.0;
  }
};

/// Runs the simulator. Each arriving call draws a profile uniformly from
/// `profile_pool` and a uniform random circular shift. Renegotiations are
/// full-grant-or-keep-old-rate; a failed upward attempt leaves the call at
/// its previous reservation until its next scheduled change.
CallSimResult RunCallSim(const std::vector<CallProfile>& profile_pool,
                         AdmissionPolicy& policy,
                         const CallSimOptions& options, Rng& rng);

}  // namespace rcbr::sim
