#include "sim/scenarios.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace rcbr::sim {

DrainResult CbrScenario(const std::vector<double>& arrival_bits,
                        double rate_bits_per_slot, double buffer_bits) {
  return DrainConstant(arrival_bits, rate_bits_per_slot, buffer_bits);
}

DrainResult SharedBufferScenario(
    const std::vector<std::vector<double>>& arrivals,
    double total_rate_bits_per_slot, double total_buffer_bits) {
  Require(!arrivals.empty(), "SharedBufferScenario: no sources");
  const std::size_t slots = arrivals.front().size();
  for (const auto& a : arrivals) {
    Require(a.size() == slots,
            "SharedBufferScenario: workloads must have equal length");
  }
  SlottedQueue queue(total_buffer_bits);
  for (std::size_t t = 0; t < slots; ++t) {
    double sum = 0;
    for (const auto& a : arrivals) sum += a[t];
    queue.Step(sum, total_rate_bits_per_slot);
  }
  return {queue.arrived_bits(), queue.lost_bits(),
          queue.max_occupancy_bits()};
}

double RcbrMuxResult::arrived_bits() const {
  double acc = 0;
  for (const auto& s : per_source) acc += s.arrived_bits;
  return acc;
}

double RcbrMuxResult::lost_bits() const {
  double acc = 0;
  for (const auto& s : per_source) acc += s.lost_bits;
  return acc;
}

double RcbrMuxResult::loss_fraction() const {
  const double arrived = arrived_bits();
  return arrived > 0 ? lost_bits() / arrived : 0.0;
}

std::int64_t RcbrMuxResult::renegotiations() const {
  std::int64_t acc = 0;
  for (const auto& s : per_source) acc += s.renegotiations;
  return acc;
}

std::int64_t RcbrMuxResult::failed_renegotiations() const {
  std::int64_t acc = 0;
  for (const auto& s : per_source) acc += s.failed_renegotiations;
  return acc;
}

double RcbrMuxResult::failure_fraction() const {
  const std::int64_t total = renegotiations();
  return total > 0
             ? static_cast<double>(failed_renegotiations()) /
                   static_cast<double>(total)
             : 0.0;
}

RcbrMuxResult RcbrScenario(const std::vector<std::vector<double>>& arrivals,
                           const std::vector<PiecewiseConstant>& requested_rates,
                           double capacity_bits_per_slot, double buffer_bits) {
  Require(!arrivals.empty(), "RcbrScenario: no sources");
  Require(arrivals.size() == requested_rates.size(),
          "RcbrScenario: one schedule per source required");
  Require(capacity_bits_per_slot >= 0, "RcbrScenario: negative capacity");
  const std::size_t n = arrivals.size();
  const auto slots = static_cast<std::int64_t>(arrivals.front().size());
  for (std::size_t i = 0; i < n; ++i) {
    Require(static_cast<std::int64_t>(arrivals[i].size()) == slots,
            "RcbrScenario: workloads must have equal length");
    Require(requested_rates[i].length() == slots,
            "RcbrScenario: schedule/workload length mismatch");
  }

  std::vector<double> requested(n, 0.0);
  std::vector<double> granted(n, 0.0);
  std::vector<SlottedQueue> queues(n, SlottedQueue(buffer_bits));
  std::vector<bool> in_deficit(n, false);
  // Whether source i renegotiated at the current slot — computed once in
  // loop 1 and reused for failure accounting in loop 3.
  std::vector<bool> attempted(n, false);
  std::deque<std::size_t> deficit_fifo;
  RcbrMuxResult result;
  result.per_source.resize(n);
  double used = 0;

  for (std::int64_t t = 0; t < slots; ++t) {
    // 1. Apply this slot's rate changes. Decreases release capacity at
    //    once; increases join the deficit FIFO and are filled below, so a
    //    newly renegotiating source queues behind earlier waiters.
    //
    //    A renegotiation is a schedule breakpoint, full stop. ChangesAt is
    //    a structural query on the breakpoint list — PiecewiseConstant
    //    merges equal adjacent values at construction, so "renegotiate to
    //    the same rate" is unrepresentable and no float tolerance is
    //    involved here.
    for (std::size_t i = 0; i < n; ++i) {
      const bool is_attempt = requested_rates[i].ChangesAt(t);
      attempted[i] = is_attempt;
      if (t > 0 && !is_attempt) continue;
      const double r_new = requested_rates[i].At(t);
      requested[i] = r_new;
      if (is_attempt) ++result.per_source[i].renegotiations;
      if (r_new <= granted[i]) {
        used -= granted[i] - r_new;
        granted[i] = r_new;
        in_deficit[i] = false;  // lazily removed from the FIFO below
      } else if (!in_deficit[i]) {
        in_deficit[i] = true;
        deficit_fifo.push_back(i);
      }
    }

    // 2. Fill deficits FIFO from the remaining capacity.
    while (!deficit_fifo.empty()) {
      const std::size_t i = deficit_fifo.front();
      if (!in_deficit[i] || granted[i] >= requested[i]) {
        in_deficit[i] = false;
        deficit_fifo.pop_front();
        continue;
      }
      const double available = capacity_bits_per_slot - used;
      if (available <= 0) break;
      const double need = requested[i] - granted[i];
      const double grant = std::min(need, available);
      granted[i] += grant;
      used += grant;
      if (granted[i] >= requested[i]) {
        in_deficit[i] = false;
        deficit_fifo.pop_front();
      } else {
        break;  // link saturated
      }
    }

    // 3. Account failures (an attempt not granted in full this slot) and
    //    advance every source's private queue at its granted rate.
    for (std::size_t i = 0; i < n; ++i) {
      auto& out = result.per_source[i];
      if (granted[i] < requested[i]) {
        out.deficit_slots += 1;
        // A failure is charged once, at the slot of the attempt.
        if (attempted[i]) ++out.failed_renegotiations;
      }
      queues[i].Step(arrivals[i][static_cast<std::size_t>(t)], granted[i]);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto& out = result.per_source[i];
    out.arrived_bits = queues[i].arrived_bits();
    out.lost_bits = queues[i].lost_bits();
    out.max_occupancy_bits = queues[i].max_occupancy_bits();
  }
  return result;
}

}  // namespace rcbr::sim
