// Minimum-rate QoS search (the paper's experimental method, Sec. V-B).
//
// "For each N we do a binary search on c; for each step in the search, we
// do many simulations, where each simulation has a randomized phasing of
// the sources, and compute the average fraction of bits lost ... we repeat
// the simulations until the sample standard deviation of the estimate is
// less than 20% of the estimate."
#pragma once

#include <cstdint>
#include <functional>

#include "util/stats.h"

namespace rcbr::sim {

struct MinRateOptions {
  /// Target loss (or failure) probability the rate must satisfy.
  double target = 1e-6;
  /// Replication stopping rule (paper: 20%).
  double relative_precision = 0.2;
  std::size_t min_replications = 4;
  std::size_t max_replications = 64;
  /// Binary-search tolerance on the rate, relative.
  double rate_tolerance = 0.01;
  int max_search_steps = 60;
};

/// Estimates a loss probability at rate `c` by replicating
/// `sample(c, replication_index)` under the paper's stopping rules.
/// Exposed separately so benches can report the estimate itself.
OnlineStats EstimateLoss(
    const std::function<double(double, std::uint64_t)>& sample, double c,
    const MinRateOptions& options);

/// Finds (approximately) the smallest rate c in [lo, hi] whose estimated
/// loss is <= options.target. `sample(c, k)` returns the loss fraction of
/// the k-th randomized replication at rate c. Requires the loss to be
/// nonincreasing in c and the target to be met at hi.
double FindMinRate(const std::function<double(double, std::uint64_t)>& sample,
                   double lo, double hi, const MinRateOptions& options);

}  // namespace rcbr::sim
