#include "sim/fluid_queue.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/search.h"

namespace rcbr::sim {

SlottedQueue::SlottedQueue(double buffer_bits) : buffer_(buffer_bits) {
  Require(buffer_bits >= 0, "SlottedQueue: negative buffer");
}

double SlottedQueue::Step(double arrival_bits, double service_bits) {
  Require(arrival_bits >= 0, "SlottedQueue::Step: negative arrival");
  Require(service_bits >= 0, "SlottedQueue::Step: negative service");
  arrived_ += arrival_bits;
  occupancy_ = std::max(occupancy_ + arrival_bits - service_bits, 0.0);
  double lost_now = 0;
  if (occupancy_ > buffer_) {
    lost_now = occupancy_ - buffer_;
    occupancy_ = buffer_;
  }
  lost_ += lost_now;
  max_occupancy_ = std::max(max_occupancy_, occupancy_);
  return lost_now;
}

double SlottedQueue::LossFraction() const {
  return arrived_ > 0 ? lost_ / arrived_ : 0.0;
}

void SlottedQueue::Reset() {
  occupancy_ = 0;
  lost_ = 0;
  arrived_ = 0;
  max_occupancy_ = 0;
}

DrainResult DrainConstant(const std::vector<double>& arrival_bits,
                          double service_bits_per_slot, double buffer_bits) {
  SlottedQueue queue(buffer_bits);
  for (double a : arrival_bits) queue.Step(a, service_bits_per_slot);
  return {queue.arrived_bits(), queue.lost_bits(),
          queue.max_occupancy_bits()};
}

DrainResult DrainSchedule(const std::vector<double>& arrival_bits,
                          const PiecewiseConstant& service_bits_per_slot,
                          double buffer_bits) {
  Require(service_bits_per_slot.length() ==
              static_cast<std::int64_t>(arrival_bits.size()),
          "DrainSchedule: schedule/workload length mismatch");
  SlottedQueue queue(buffer_bits);
  for (std::size_t t = 0; t < arrival_bits.size(); ++t) {
    queue.Step(arrival_bits[t],
               service_bits_per_slot.At(static_cast<std::int64_t>(t)));
  }
  return {queue.arrived_bits(), queue.lost_bits(),
          queue.max_occupancy_bits()};
}

double MinLosslessRate(const std::vector<double>& arrival_bits,
                       double buffer_bits, double relative_tolerance) {
  Require(!arrival_bits.empty(), "MinLosslessRate: empty workload");
  double peak = 0;
  for (double a : arrival_bits) peak = std::max(peak, a);
  if (peak == 0) return 0;
  SearchOptions options;
  options.relative_tolerance = relative_tolerance;
  return MinFeasible(0.0, peak,
                     [&](double rate) {
                       return DrainConstant(arrival_bits, rate, buffer_bits)
                                  .lost_bits == 0.0;
                     },
                     options);
}

}  // namespace rcbr::sim
