#include "sim/fluid_queue.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.h"
#include "util/search.h"

namespace rcbr::sim {

SlottedQueue::SlottedQueue(double buffer_bits, obs::Recorder* recorder,
                           std::uint64_t obs_id)
    : buffer_(buffer_bits), obs_(recorder), obs_id_(obs_id) {
  Require(!std::isnan(buffer_bits), "SlottedQueue: buffer size is NaN");
  Require(buffer_bits >= 0, "SlottedQueue: negative buffer");
  overflow_slots_ = obs::FindCounter(obs_, "queue.overflow_slots");
  // Per-queue series: many queues (one per source) share one recorder,
  // so the id keeps their occupancy trajectories apart.
  const std::string series_name =
      "queue." + std::to_string(obs_id_) + ".occupancy_bits";
  ts_occupancy_ = obs::FindSeries(obs_, series_name.c_str());
}

double SlottedQueue::Step(double arrival_bits, double service_bits) {
  Require(!std::isnan(arrival_bits) && arrival_bits >= 0,
          "SlottedQueue::Step: arrival must be a number >= 0");
  Require(!std::isnan(service_bits) && service_bits >= 0,
          "SlottedQueue::Step: service must be a number >= 0");
  const double before = occupancy_;
  arrived_ += arrival_bits;
  occupancy_ = std::max(occupancy_ + arrival_bits - service_bits, 0.0);
  double lost_now = 0;
  if (occupancy_ > buffer_) {
    lost_now = occupancy_ - buffer_;
    occupancy_ = buffer_;
  }
  lost_ += lost_now;
  max_occupancy_ = std::max(max_occupancy_, occupancy_);
  if constexpr (obs::kEnabled) {
    if (ts_occupancy_ != nullptr) {
      ts_occupancy_->Sample(static_cast<double>(slot_), occupancy_);
    }
    if (lost_now > 0) {
      if (overflow_slots_ != nullptr) overflow_slots_->Add();
      obs::SetGauge(obs_, "queue.lost_bits_per_overflow", lost_now);
      obs::Emit(obs_, static_cast<double>(slot_),
                obs::EventKind::kBufferOverflow, obs_id_,
                {"lost_bits", lost_now}, {"occupancy_bits", occupancy_});
      // First overflow after a loss-free stretch freezes the flight ring
      // — the spill's lead-up matters, a long overflow run does not.
      if (!overflowing_) {
        obs::TriggerFlight(obs_, static_cast<double>(slot_),
                           obs::EventKind::kBufferOverflow, obs_id_,
                           {"lost_bits", lost_now},
                           {"occupancy_bits", occupancy_});
      }
      overflowing_ = true;
    } else {
      overflowing_ = false;
      if (before > 0 && occupancy_ == 0 && service_bits > arrival_bits) {
        obs::Emit(obs_, static_cast<double>(slot_),
                  obs::EventKind::kBufferUnderflow, obs_id_,
                  {"drained_bits", before + arrival_bits});
      }
    }
  }
  ++slot_;
  return lost_now;
}

double SlottedQueue::LossFraction() const {
  return arrived_ > 0 ? lost_ / arrived_ : 0.0;
}

void SlottedQueue::Reset() {
  occupancy_ = 0;
  lost_ = 0;
  arrived_ = 0;
  max_occupancy_ = 0;
  slot_ = 0;
  overflowing_ = false;
}

DrainResult DrainConstant(const std::vector<double>& arrival_bits,
                          double service_bits_per_slot, double buffer_bits,
                          obs::Recorder* recorder) {
  SlottedQueue queue(buffer_bits, recorder);
  for (double a : arrival_bits) queue.Step(a, service_bits_per_slot);
  return {queue.arrived_bits(), queue.lost_bits(),
          queue.max_occupancy_bits()};
}

DrainResult DrainSchedule(const std::vector<double>& arrival_bits,
                          const PiecewiseConstant& service_bits_per_slot,
                          double buffer_bits, obs::Recorder* recorder) {
  Require(service_bits_per_slot.length() ==
              static_cast<std::int64_t>(arrival_bits.size()),
          "DrainSchedule: schedule/workload length mismatch");
  SlottedQueue queue(buffer_bits, recorder);
  for (std::size_t t = 0; t < arrival_bits.size(); ++t) {
    queue.Step(arrival_bits[t],
               service_bits_per_slot.At(static_cast<std::int64_t>(t)));
  }
  return {queue.arrived_bits(), queue.lost_bits(),
          queue.max_occupancy_bits()};
}

double MinLosslessRate(const std::vector<double>& arrival_bits,
                       double buffer_bits, double relative_tolerance) {
  Require(!arrival_bits.empty(), "MinLosslessRate: empty workload");
  double peak = 0;
  for (double a : arrival_bits) peak = std::max(peak, a);
  if (peak == 0) return 0;
  SearchOptions options;
  options.relative_tolerance = relative_tolerance;
  return MinFeasible(0.0, peak,
                     [&](double rate) {
                       return DrainConstant(arrival_bits, rate, buffer_bits)
                                  .lost_bits == 0.0;
                     },
                     options);
}

}  // namespace rcbr::sim
