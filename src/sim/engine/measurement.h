// Warmup + fixed-length measurement intervals, shared by the engine's
// drivers.
//
// Integrate() splits a clock advance at the warmup boundary and at every
// interval boundary, handing each in-interval segment to the caller.
// The splitting arithmetic is copied verbatim from the legacy simulator
// loops so utilization integrals stay bit-identical (regression pins).
#pragma once

#include <algorithm>
#include <cstdint>

namespace rcbr::sim::engine {

class MeasurementWindow {
 public:
  MeasurementWindow(double warmup_seconds, std::size_t intervals,
                    double interval_seconds)
      : warmup_(warmup_seconds),
        intervals_(intervals),
        interval_seconds_(interval_seconds) {}

  double warmup_seconds() const { return warmup_; }
  std::size_t intervals() const { return intervals_; }
  double interval_seconds() const { return interval_seconds_; }
  double end_time() const {
    return warmup_ + interval_seconds_ * static_cast<double>(intervals_);
  }

  /// Interval containing time `t`, or -1 during warmup / past the end.
  std::int64_t IntervalIndex(double t) const {
    if (t < warmup_) return -1;
    const auto idx =
        static_cast<std::int64_t>((t - warmup_) / interval_seconds_);
    return idx < static_cast<std::int64_t>(intervals_) ? idx : -1;
  }

  /// Invokes fn(interval, segment_start, segment_end) for every piece of
  /// [from, to) inside a measurement interval, in time order.
  template <typename Fn>
  void Integrate(double from, double to, Fn&& fn) const {
    double now = from;
    while (now < to) {
      double seg_end = to;
      if (now < warmup_) {
        seg_end = std::min(to, warmup_);
      } else {
        const std::int64_t idx = IntervalIndex(now);
        if (idx >= 0) {
          const double boundary =
              warmup_ + interval_seconds_ * static_cast<double>(idx + 1);
          seg_end = std::min(to, boundary);
          fn(static_cast<std::size_t>(idx), now, seg_end);
        }
      }
      now = seg_end;
    }
  }

 private:
  double warmup_;
  std::size_t intervals_;
  double interval_seconds_;
};

}  // namespace rcbr::sim::engine
