// The unified call/network/signaling simulation on top of the engine.
//
// One configuration drives everything the tree previously simulated three
// separate ways:
//  * Poisson call dynamics per traffic class (arrival streams of rotated
//    stepwise-CBR schedules, full-grant-or-keep-old-rate renegotiation);
//  * a link graph with candidate routes and optional least-loaded
//    routing (Sec. III-C's call-level load balancing);
//  * admission control through the AdmissionPolicy hook (capacity-only,
//    Chernoff MBAC, ... — Sec. VI);
//  * the signaling plane: every setup, renegotiation and teardown goes
//    through a SignalingPath over per-link PortControllers, optionally
//    behind a lossy RM-cell channel with periodic resync (Sec. III-B).
//
// RunCallSim and RunNetworkSim are thin drivers of this function; their
// legacy outputs are pinned bit-identical in the regression pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "sim/call_sim.h"
#include "util/rng.h"

namespace rcbr::sim::fault {
class FaultPlan;
}

namespace rcbr::sim::engine {

/// One traffic class: a Poisson arrival stream of calls sharing a profile
/// choice rule and a set of candidate routes over the link graph.
struct TrafficClass {
  /// Candidate routes, each a sequence of link indices.
  std::vector<std::vector<std::size_t>> candidate_routes;
  double arrival_rate_per_s = 0;
  /// Profile used when `uniform_profile_pick` is false.
  std::size_t profile_index = 0;
  /// Call-level style: each arrival draws its profile uniformly from the
  /// whole pool (one RNG draw even for a single-profile pool — pinned).
  bool uniform_profile_pick = false;
  /// Multi-resolution contract for this class's calls (empty = scalar).
  /// Admission walks the ladder best-rung-first and grants the first
  /// feasible rung instead of blocking; departures and rate decreases
  /// trigger upgrade passes that promote downgraded calls back toward
  /// rung 0 in ascending call-id order through the normal renegotiation
  /// path. A depth-1 ladder is pinned byte-identical to the scalar
  /// contract (BENCH json and traces).
  RateLadder ladder;
};

struct SimulationOptions {
  std::vector<double> link_capacities_bps;
  std::vector<TrafficClass> classes;
  double warmup_seconds = 0;
  std::size_t sample_intervals = 10;
  double interval_seconds = 0;
  /// Pick the feasible candidate route with the smallest bottleneck
  /// utilization; otherwise first-fit.
  bool least_loaded_routing = false;
  /// Slack on every port's capacity check (the network driver uses 1e-9,
  /// the call-level driver 0 — both pinned).
  double admission_tolerance_bps = 0;
  /// Consulted after route selection with the bottleneck link's view
  /// (nullptr = capacity-only admission).
  AdmissionPolicy* policy = nullptr;
  /// Sim-level events and counters (admit/reneg/departure).
  obs::Recorder* recorder = nullptr;
  /// Handed to the per-link PortControllers, so port-level deny events
  /// and counters land on the same sim-seconds time axis. Usually the
  /// same recorder; the legacy drivers leave it null.
  obs::Recorder* signaling_recorder = nullptr;
  /// Counter-name prefix ("callsim", "netsim", ...).
  std::string metric_prefix = "engine";
  /// One-way per-hop signaling latency (reported by SignalingPath).
  double per_hop_delay_s = 0;
  /// Enables the ports' per-VCI audit map (required for resync; the
  /// bit-compatible legacy drivers run untracked).
  bool track_connections = false;
  /// RM-cell loss on the renegotiation channel (0 = lossless). Nonzero
  /// loss or resync routes every delta through a LossyPathRenegotiator,
  /// which draws one Bernoulli per hop per cell from the sweep RNG.
  double cell_loss_probability = 0;
  /// Absolute-rate resync after this many delta cells (0 = never).
  std::int64_t resync_every_cells = 0;
  /// Trace-event payload schema. kSingleLink reproduces the call-level
  /// driver's fields (reserved_bps, by_capacity), kNetwork the network
  /// driver's (class, hops).
  enum class TraceStyle { kSingleLink, kNetwork };
  TraceStyle trace_style = TraceStyle::kNetwork;
  /// Deterministic fault schedule injected into the event loop (null or
  /// empty = byte-identical to the fault-free simulation). Loss bursts
  /// impair the lossy renegotiation channel; link failures block
  /// admissions and force active calls to re-route (or drop, when no
  /// candidate route fits); controller crashes wipe a port's state, which
  /// the affected calls repair with absolute-rate resyncs. A non-empty
  /// plan requires `track_connections` (reroute/repair audit the per-VCI
  /// rates). Borrowed; must outlive the run.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Expected peak concurrent calls; pre-sizes the event queue, the call
  /// arena and the per-VCI tables so large runs do not pay repeated
  /// reallocation. 0 = derive from offered load (arrival rates × mean
  /// profile duration). Purely a capacity hint — never affects results.
  std::size_t expected_peak_calls = 0;
  /// Run on the legacy binary-heap event queue instead of the calendar
  /// queue. Both implement the identical (time, seq) order, so outputs
  /// are bit-identical either way (pinned by the engine tests); the
  /// switch exists for differential testing and A/B throughput runs.
  bool use_legacy_event_heap = false;
};

/// Per-class tallies plus the per-interval samples the drivers turn into
/// failure-probability statistics.
struct ClassTotals {
  std::int64_t offered_calls = 0;
  std::int64_t blocked_calls = 0;
  std::int64_t upward_attempts = 0;
  std::int64_t failed_attempts = 0;
  /// Mid-call outcomes of injected link failures (0 without a fault
  /// plan): calls moved to an alternate candidate route, and calls lost
  /// because no alternate fit.
  std::int64_t rerouted_calls = 0;
  std::int64_t dropped_calls = 0;
  /// Ladder outcomes (0 for scalar and depth-1 contracts): calls admitted
  /// below their full ask, and rung promotions granted after capacity
  /// freed up.
  std::int64_t downgraded_admits = 0;
  std::int64_t upgrades = 0;
  /// Delivered utility integrated over the measurement window: each call
  /// accrues its current rung's utility-per-second while alive (scalar
  /// classes count 1.0/s per call when any class carries a ladder;
  /// all-scalar runs leave this 0).
  double utility_seconds = 0;
  std::vector<std::int64_t> interval_attempts;
  std::vector<std::int64_t> interval_failures;
};

struct SimulationResult {
  std::vector<ClassTotals> per_class;
  /// Reserved-rate time integral per link and measurement interval.
  std::vector<std::vector<double>> util_by_interval;
  /// Running per-link totals, accumulated segment by segment in event
  /// order (kept separate from the per-interval buckets so the network
  /// driver's mean reproduces the legacy summation order exactly).
  std::vector<double> util_total;
  /// Engine events dispatched over the whole run (arrivals, transitions,
  /// departures, faults) — the numerator of the macro-capacity
  /// events/sec metric.
  std::int64_t events_processed = 0;
  /// High-water mark of concurrently admitted calls.
  std::int64_t peak_concurrent_calls = 0;
};

SimulationResult RunSimulation(const std::vector<CallProfile>& profiles,
                               const SimulationOptions& options, Rng& rng);

}  // namespace rcbr::sim::engine
