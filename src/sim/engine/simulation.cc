#include "sim/engine/simulation.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/engine/call_process.h"
#include "sim/engine/engine.h"
#include "sim/engine/measurement.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "signaling/lossy_channel.h"
#include "signaling/path.h"
#include "signaling/port_controller.h"
#include "util/error.h"

namespace rcbr::sim::engine {

namespace {

using TraceStyle = SimulationOptions::TraceStyle;

class Simulation {
 public:
  Simulation(const std::vector<CallProfile>& profiles,
             const SimulationOptions& options, Rng& rng)
      : profiles_(profiles), options_(options), rng_(rng),
        window_(options.warmup_seconds, options.sample_intervals,
                options.interval_seconds) {
    Validate();
    const std::size_t num_links = options_.link_capacities_bps.size();
    ports_.reserve(num_links);
    for (double capacity : options_.link_capacities_bps) {
      ports_.push_back(std::make_unique<signaling::PortController>(
          capacity, options_.track_connections, options_.signaling_recorder,
          options_.admission_tolerance_bps));
    }
    path_index_.resize(options_.classes.size());
    for (std::size_t c = 0; c < options_.classes.size(); ++c) {
      for (const auto& route : options_.classes[c].candidate_routes) {
        std::vector<signaling::PortController*> hops;
        hops.reserve(route.size());
        for (std::size_t link : route) hops.push_back(ports_[link].get());
        path_index_[c].push_back(paths_.size());
        paths_.push_back(std::make_unique<signaling::SignalingPath>(
            std::move(hops), options_.per_hop_delay_s));
      }
    }

    const std::string& prefix = options_.metric_prefix;
    obs::Recorder* obs = options_.recorder;
    ctr_offered_ =
        obs::FindCounter(obs, (prefix + ".offered_calls").c_str());
    ctr_blocked_ =
        obs::FindCounter(obs, (prefix + ".blocked_calls").c_str());
    ctr_attempts_ =
        obs::FindCounter(obs, (prefix + ".upward_attempts").c_str());
    ctr_failures_ =
        obs::FindCounter(obs, (prefix + ".failed_attempts").c_str());

    result_.per_class.resize(options_.classes.size());
    for (ClassTotals& totals : result_.per_class) {
      totals.interval_attempts.assign(window_.intervals(), 0);
      totals.interval_failures.assign(window_.intervals(), 0);
    }
    result_.util_by_interval.assign(
        num_links, std::vector<double>(window_.intervals(), 0.0));
    result_.util_total.assign(num_links, 0.0);

    if (options_.fault_plan != nullptr && !options_.fault_plan->empty()) {
      injector_ = std::make_unique<fault::FaultInjector>(
          options_.fault_plan, &engine_, num_links, options_.recorder);
      ctr_rerouted_ =
          obs::FindCounter(obs, (prefix + ".rerouted_calls").c_str());
      ctr_dropped_ =
          obs::FindCounter(obs, (prefix + ".dropped_calls").c_str());
    }
  }

  SimulationResult Run() {
    engine_.set_advance_hook([this](double from, double to) {
      window_.Integrate(from, to,
                        [this](std::size_t k, double start, double end) {
                          for (std::size_t l = 0; l < ports_.size(); ++l) {
                            const double reserved =
                                ports_[l]->utilization_bps();
                            result_.util_by_interval[l][k] +=
                                reserved * (end - start);
                            result_.util_total[l] += reserved * (end - start);
                          }
                        });
    });
    // Arm the fault plan before seeding arrivals, so a fault scheduled at
    // the same instant as a call event fires first (fixed order).
    if (injector_ != nullptr) {
      fault::FaultCallbacks callbacks;
      callbacks.on_link_down = [this](std::size_t link, double now) {
        OnLinkDown(link, now);
      };
      callbacks.on_controller_crash = [this](std::size_t link, double now) {
        OnControllerCrash(link, now);
      };
      injector_->Arm(std::move(callbacks));
    }
    // Seed one arrival per class, in class order (pinned draw order).
    for (std::size_t c = 0; c < options_.classes.size(); ++c) {
      ScheduleArrival(c);
    }
    engine_.RunUntil(window_.end_time());
    return std::move(result_);
  }

 private:
  void Validate() const {
    Require(!profiles_.empty(), "engine: empty profile pool");
    Require(!options_.link_capacities_bps.empty(), "engine: no links");
    Require(!options_.classes.empty(), "engine: no traffic classes");
    Require(options_.interval_seconds > 0 && options_.sample_intervals > 0,
            "engine: need measurement intervals");
    Require(options_.admission_tolerance_bps >= 0,
            "engine: negative admission tolerance");
    const std::size_t num_links = options_.link_capacities_bps.size();
    for (double c : options_.link_capacities_bps) {
      Require(c > 0, "engine: link capacity must be positive");
    }
    for (const TrafficClass& cls : options_.classes) {
      Require(!cls.candidate_routes.empty(), "engine: class without routes");
      Require(cls.arrival_rate_per_s > 0,
              "engine: class arrival rate must be positive");
      Require(cls.uniform_profile_pick ||
                  cls.profile_index < profiles_.size(),
              "engine: profile index out of range");
      for (const auto& route : cls.candidate_routes) {
        Require(!route.empty(), "engine: empty route");
        for (std::size_t link : route) {
          Require(link < num_links, "engine: link index out of range");
        }
      }
    }
    if (Lossy()) {
      Require(options_.track_connections,
              "engine: lossy signaling needs tracked connections (resync)");
    }
    if (options_.fault_plan != nullptr && !options_.fault_plan->empty()) {
      Require(options_.track_connections,
              "engine: fault injection needs tracked connections "
              "(reroute and crash repair audit per-VCI rates)");
      Require(options_.fault_plan->max_link() < num_links,
              "engine: fault plan targets a link index out of range");
    }
  }

  bool Lossy() const {
    return options_.cell_loss_probability != 0 ||
           options_.resync_every_cells != 0 ||
           (options_.fault_plan != nullptr &&
            options_.fault_plan->has_bursts());
  }

  /// True unless an injected fault has the link down right now.
  bool LinkUp(std::size_t link) const {
    return injector_ == nullptr || injector_->timeline().link_up(link);
  }

  void ScheduleArrival(std::size_t c) {
    const double when =
        engine_.now() +
        rng_.Exponential(1.0 / options_.classes[c].arrival_rate_per_s);
    engine_.At(when, [this, c] { OnArrival(c); });
  }

  bool RouteFits(const std::vector<std::size_t>& route,
                 double extra_bps) const {
    for (std::size_t link : route) {
      if (!LinkUp(link)) return false;
      if (ports_[link]->utilization_bps() + extra_bps >
          options_.link_capacities_bps[link] +
              options_.admission_tolerance_bps) {
        return false;
      }
    }
    return true;
  }

  double BottleneckUtilization(const std::vector<std::size_t>& route) const {
    double worst = 0;
    for (std::size_t link : route) {
      worst = std::max(worst, ports_[link]->utilization_bps() /
                                  options_.link_capacities_bps[link]);
    }
    return worst;
  }

  std::size_t BottleneckLink(const std::vector<std::size_t>& route) const {
    std::size_t best = route.front();
    double worst = -1.0;
    for (std::size_t link : route) {
      const double u = ports_[link]->utilization_bps() /
                       options_.link_capacities_bps[link];
      if (u > worst) {
        worst = u;
        best = link;
      }
    }
    return best;
  }

  /// Granted rates of every active call crossing `link`, in the active
  /// map's iteration order (the order the legacy call-level simulator fed
  /// the MBAC estimators — pinned).
  std::vector<double> RatesOn(std::size_t link) const {
    std::vector<double> rates;
    rates.reserve(active_.size());
    for (const auto& [id, call] : active_) {
      for (std::size_t l : *call.route) {
        if (l == link) {
          rates.push_back(call.rate_bps);
          break;
        }
      }
    }
    return rates;
  }

  struct RouteChoice {
    const std::vector<std::size_t>* route = nullptr;
    std::size_t candidate = 0;
  };

  /// Route selection: feasible candidates only; least-loaded picks the
  /// one with the smallest bottleneck utilization, otherwise first fit.
  RouteChoice SelectRoute(const TrafficClass& cls, double rate_bps) const {
    RouteChoice choice;
    double chosen_bottleneck = 2.0;
    for (std::size_t r = 0; r < cls.candidate_routes.size(); ++r) {
      const auto& route = cls.candidate_routes[r];
      if (!RouteFits(route, rate_bps)) continue;
      if (!options_.least_loaded_routing) {
        choice.route = &route;
        choice.candidate = r;
        break;
      }
      const double bottleneck = BottleneckUtilization(route);
      if (bottleneck < chosen_bottleneck) {
        choice.route = &route;
        choice.candidate = r;
        chosen_bottleneck = bottleneck;
      }
    }
    return choice;
  }

  std::unique_ptr<signaling::LossyPathRenegotiator> MakeRenegotiator(
      signaling::SignalingPath* path, std::uint64_t id, double rate_bps) {
    signaling::LossyChannelOptions lossy;
    lossy.cell_loss_probability = options_.cell_loss_probability;
    lossy.resync_every_cells = options_.resync_every_cells;
    lossy.recorder = options_.signaling_recorder;
    if (injector_ != nullptr) {
      lossy.conditions = &injector_->timeline().conditions();
    }
    return std::make_unique<signaling::LossyPathRenegotiator>(
        path, id, rate_bps, lossy, &rng_);
  }

  void OnArrival(std::size_t c) {
    const TrafficClass& cls = options_.classes[c];
    // Schedule the next arrival regardless of the admission outcome.
    ScheduleArrival(c);
    ClassTotals& totals = result_.per_class[c];
    ++totals.offered_calls;
    if (ctr_offered_ != nullptr) ctr_offered_->Add();

    const std::size_t pick =
        cls.uniform_profile_pick
            ? static_cast<std::size_t>(rng_.UniformInt(
                  0, static_cast<std::int64_t>(profiles_.size()) - 1))
            : cls.profile_index;
    const CallProfile& profile = profiles_[pick];
    const std::int64_t shift =
        rng_.UniformInt(0, profile.rates_bps.length() - 1);
    PiecewiseConstant schedule = profile.rates_bps.Rotate(shift);
    const double initial_rate = schedule.steps().front().value;
    const double now = engine_.now();

    const RouteChoice selected = SelectRoute(cls, initial_rate);
    const std::vector<std::size_t>* chosen = selected.route;
    const std::size_t chosen_candidate = selected.candidate;

    const bool physically_fits = chosen != nullptr;
    bool admitted = physically_fits;
    if (physically_fits && options_.policy != nullptr) {
      const std::size_t link = BottleneckLink(*chosen);
      const std::vector<double> rates = RatesOn(link);
      const LinkView view{options_.link_capacities_bps[link],
                          ports_[link]->utilization_bps(), &rates};
      admitted = options_.policy->Admit(now, view, initial_rate);
    }
    if (!admitted) {
      ++totals.blocked_calls;
      if (ctr_blocked_ != nullptr) ctr_blocked_->Add();
      if (options_.trace_style == TraceStyle::kSingleLink) {
        obs::Emit(options_.recorder, now, obs::EventKind::kAdmitReject,
                  next_call_id_, {"rate_bps", initial_rate},
                  {"reserved_bps", ports_.front()->utilization_bps()},
                  {"by_capacity", physically_fits ? 0.0 : 1.0});
      } else {
        obs::Emit(options_.recorder, now, obs::EventKind::kAdmitReject,
                  next_call_id_, {"class", static_cast<double>(c)},
                  {"rate_bps", initial_rate});
      }
      return;
    }

    const std::uint64_t id = next_call_id_++;
    signaling::SignalingPath& path =
        *paths_[path_index_[c][chosen_candidate]];
    Require(path.SetupConnection(id, initial_rate),
            "engine: signaling rejected a pre-checked setup");
    active_.emplace(id, CallProcess{std::move(schedule),
                                    profile.slot_seconds, now, initial_rate,
                                    c, chosen,
                                    path_index_[c][chosen_candidate]});
    if (Lossy()) {
      renegotiators_.emplace(id, MakeRenegotiator(&path, id, initial_rate));
    }
    if (options_.policy != nullptr) {
      options_.policy->OnAdmitted(now, id, initial_rate);
    }
    if (options_.trace_style == TraceStyle::kSingleLink) {
      obs::Emit(options_.recorder, now, obs::EventKind::kAdmitAccept, id,
                {"rate_bps", initial_rate},
                {"reserved_bps", ports_.front()->utilization_bps()});
    } else {
      obs::Emit(options_.recorder, now, obs::EventKind::kAdmitAccept, id,
                {"class", static_cast<double>(c)},
                {"rate_bps", initial_rate},
                {"hops", static_cast<double>(chosen->size())});
    }
    ScheduleTransition(id, 1);
  }

  void ScheduleTransition(std::uint64_t id, std::size_t next_step) {
    const CallProcess& call = active_.at(id);
    if (call.HasStep(next_step)) {
      engine_.At(call.StepTime(next_step),
                 [this, id, next_step] { OnRateChange(id, next_step); });
    } else {
      engine_.At(call.DepartureTime(), [this, id] { OnDeparture(id); });
    }
  }

  /// Carries the renegotiation to the ports — directly over the path, or
  /// through the lossy channel when one is configured.
  bool RequestRate(CallProcess& call, std::uint64_t id, double new_rate,
                   double now) {
    auto it = renegotiators_.find(id);
    if (it != renegotiators_.end()) {
      const bool accepted = it->second->Renegotiate(new_rate, now);
      if (accepted) call.rate_bps = it->second->believed_rate_bps();
      return accepted;
    }
    const bool accepted =
        paths_[call.path_index]
            ->RequestDelta(id, new_rate - call.rate_bps, now)
            .accepted;
    if (accepted) call.rate_bps = new_rate;
    return accepted;
  }

  void OnRateChange(std::uint64_t id, std::size_t step) {
    auto it = active_.find(id);
    if (it == active_.end()) return;
    CallProcess& call = it->second;
    const double now = engine_.now();
    const double new_rate = call.StepRate(step);
    const double old_rate = call.rate_bps;
    if (new_rate <= old_rate) {
      // Decreases always succeed (and, on a lossy channel, may be lost —
      // the unacked source moves its belief either way).
      RequestRate(call, id, new_rate, now);
      call.rate_bps = new_rate;
      if (options_.policy != nullptr) {
        options_.policy->OnRateChange(now, id, old_rate, new_rate);
      }
    } else {
      ClassTotals& totals = result_.per_class[call.class_index];
      ++totals.upward_attempts;
      if (ctr_attempts_ != nullptr) ctr_attempts_->Add();
      const std::int64_t idx = window_.IntervalIndex(now);
      if (idx >= 0) {
        ++totals.interval_attempts[static_cast<std::size_t>(idx)];
      }
      // A route with a failed link cannot carry the request cell at all:
      // the increase is denied without consulting (or drawing loss for)
      // any port.
      bool accepted = false;
      if (RouteLinksUp(*call.route)) {
        accepted = RequestRate(call, id, new_rate, now);
      }
      if (accepted) {
        if (options_.policy != nullptr) {
          options_.policy->OnRateChange(now, id, old_rate, new_rate);
        }
        if (options_.trace_style == TraceStyle::kSingleLink) {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegGrant, id,
                    {"old_bps", old_rate}, {"new_bps", new_rate},
                    {"reserved_bps", ports_.front()->utilization_bps()});
        } else {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegGrant, id,
                    {"class", static_cast<double>(call.class_index)},
                    {"old_bps", old_rate}, {"new_bps", new_rate});
        }
      } else {
        ++totals.failed_attempts;
        if (ctr_failures_ != nullptr) ctr_failures_->Add();
        if (idx >= 0) {
          ++totals.interval_failures[static_cast<std::size_t>(idx)];
        }
        // Full-grant-or-nothing: the call keeps its old reservation.
        if (options_.trace_style == TraceStyle::kSingleLink) {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegDeny, id,
                    {"old_bps", old_rate}, {"new_bps", new_rate},
                    {"reserved_bps", ports_.front()->utilization_bps()});
        } else {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegDeny, id,
                    {"class", static_cast<double>(call.class_index)},
                    {"old_bps", old_rate}, {"new_bps", new_rate});
        }
      }
    }
    ScheduleTransition(id, step + 1);
  }

  bool RouteLinksUp(const std::vector<std::size_t>& route) const {
    for (std::size_t link : route) {
      if (!LinkUp(link)) return false;
    }
    return true;
  }

  /// Active calls whose route crosses `link`, ascending call id — the
  /// fixed processing order fault handlers use (the active map's own
  /// iteration order is not deterministic across platforms).
  std::vector<std::uint64_t> CallsCrossing(std::size_t link) const {
    std::vector<std::uint64_t> ids;
    for (const auto& [id, call] : active_) {
      for (std::size_t l : *call.route) {
        if (l == link) {
          ids.push_back(id);
          break;
        }
      }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  void OnLinkDown(std::size_t link, double now) {
    for (std::uint64_t id : CallsCrossing(link)) {
      RerouteOrDrop(id, link, now);
    }
  }

  /// A link failure severed this call's route: move it to a feasible
  /// alternate candidate at its current rate, or drop it mid-service.
  void RerouteOrDrop(std::uint64_t id, std::size_t failed_link, double now) {
    CallProcess& call = active_.at(id);
    const std::size_t c = call.class_index;
    ClassTotals& totals = result_.per_class[c];
    // Release the dead route first so an alternate sharing healthy links
    // with it sees the freed capacity.
    paths_[call.path_index]->TeardownConnection(id, call.rate_bps);
    renegotiators_.erase(id);
    const RouteChoice alternate =
        SelectRoute(options_.classes[c], call.rate_bps);
    if (alternate.route != nullptr) {
      signaling::SignalingPath& path =
          *paths_[path_index_[c][alternate.candidate]];
      Require(path.SetupConnection(id, call.rate_bps),
              "engine: signaling rejected a pre-checked reroute");
      call.route = alternate.route;
      call.path_index = path_index_[c][alternate.candidate];
      if (Lossy()) {
        renegotiators_.emplace(id,
                               MakeRenegotiator(&path, id, call.rate_bps));
      }
      ++totals.rerouted_calls;
      if (ctr_rerouted_ != nullptr) ctr_rerouted_->Add();
      obs::Emit(options_.recorder, now, obs::EventKind::kCallRerouted, id,
                {"class", static_cast<double>(c)},
                {"link", static_cast<double>(failed_link)},
                {"rate_bps", call.rate_bps});
    } else {
      // No feasible alternate: the network loses the call. Pending
      // transition events for the id become no-ops, like a departure.
      if (options_.policy != nullptr) {
        options_.policy->OnDeparture(now, id, call.rate_bps);
      }
      ++totals.dropped_calls;
      if (ctr_dropped_ != nullptr) ctr_dropped_->Add();
      obs::Emit(options_.recorder, now, obs::EventKind::kCallDropped, id,
                {"class", static_cast<double>(c)},
                {"link", static_cast<double>(failed_link)},
                {"rate_bps", call.rate_bps});
      active_.erase(id);
    }
  }

  /// The port controller on `link` crashed and restarted empty. The
  /// existing absolute-rate resync is the repair (Sec. III-B): every call
  /// crossing the link resyncs its believed rate along its whole path,
  /// rebuilding the port's per-VCI map and aggregate utilization.
  void OnControllerCrash(std::size_t link, double now) {
    ports_[link]->CrashRestart();
    for (std::uint64_t id : CallsCrossing(link)) {
      auto it = renegotiators_.find(id);
      if (it != renegotiators_.end()) {
        it->second->Resync(now);
      } else {
        const CallProcess& call = active_.at(id);
        paths_[call.path_index]->Resync(id, call.rate_bps, now);
      }
    }
  }

  void OnDeparture(std::uint64_t id) {
    auto it = active_.find(id);
    if (it == active_.end()) return;
    CallProcess& call = it->second;
    const double now = engine_.now();
    const double rate = call.rate_bps;
    // Untracked ports release the hint; tracked ports release what they
    // actually reserved (which under loss may differ from the belief).
    paths_[call.path_index]->TeardownConnection(id, rate);
    if (options_.policy != nullptr) {
      options_.policy->OnDeparture(now, id, rate);
    }
    if (options_.trace_style == TraceStyle::kSingleLink) {
      obs::Emit(options_.recorder, now, obs::EventKind::kCallDeparture, id,
                {"rate_bps", rate},
                {"reserved_bps", ports_.front()->utilization_bps()});
    } else {
      obs::Emit(options_.recorder, now, obs::EventKind::kCallDeparture, id,
                {"class", static_cast<double>(call.class_index)},
                {"rate_bps", rate});
    }
    renegotiators_.erase(id);
    active_.erase(it);
  }

  const std::vector<CallProfile>& profiles_;
  const SimulationOptions& options_;
  Rng& rng_;
  MeasurementWindow window_;
  Engine engine_;
  std::vector<std::unique_ptr<signaling::PortController>> ports_;
  std::vector<std::unique_ptr<signaling::SignalingPath>> paths_;
  std::vector<std::vector<std::size_t>> path_index_;
  std::unordered_map<std::uint64_t, CallProcess> active_;
  std::unordered_map<std::uint64_t,
                     std::unique_ptr<signaling::LossyPathRenegotiator>>
      renegotiators_;
  std::uint64_t next_call_id_ = 1;
  std::unique_ptr<fault::FaultInjector> injector_;
  SimulationResult result_;
  obs::Counter* ctr_offered_ = nullptr;
  obs::Counter* ctr_blocked_ = nullptr;
  obs::Counter* ctr_attempts_ = nullptr;
  obs::Counter* ctr_failures_ = nullptr;
  obs::Counter* ctr_rerouted_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
};

}  // namespace

SimulationResult RunSimulation(const std::vector<CallProfile>& profiles,
                               const SimulationOptions& options, Rng& rng) {
  Simulation simulation(profiles, options, rng);
  return simulation.Run();
}

}  // namespace rcbr::sim::engine
