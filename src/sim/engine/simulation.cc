#include "sim/engine/simulation.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/engine/call_store.h"
#include "sim/engine/engine.h"
#include "sim/engine/measurement.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "signaling/lossy_channel.h"
#include "signaling/path.h"
#include "signaling/port_shards.h"
#include "util/error.h"

namespace rcbr::sim::engine {

namespace {

using TraceStyle = SimulationOptions::TraceStyle;

// Payload kinds for the engine's POD event records. Arrivals carry the
// class index in `a`; transitions and departures carry the call's store
// handle in `a` (+ its generation in `gen`, the stale-event filter) and,
// for transitions, the step index in `b`. Upgrade passes carry the link
// index in `a`: they ride the same calendar queue so promotions happen
// at a deterministic point in the (time, seq) order.
constexpr std::uint32_t kEvArrival = 1;
constexpr std::uint32_t kEvTransition = 2;
constexpr std::uint32_t kEvDeparture = 3;
constexpr std::uint32_t kEvUpgradePass = 4;

class Simulation {
 public:
  Simulation(const std::vector<CallProfile>& profiles,
             const SimulationOptions& options, Rng& rng)
      : profiles_(profiles), options_(options), rng_(rng),
        window_(options.warmup_seconds, options.sample_intervals,
                options.interval_seconds),
        engine_(options.use_legacy_event_heap
                    ? EventQueue::Impl::kBinaryHeap
                    : EventQueue::Impl::kCalendar) {
    Validate();
    const std::size_t num_links = options_.link_capacities_bps.size();
    ports_.emplace(options_.link_capacities_bps, options_.track_connections,
                   options_.signaling_recorder,
                   options_.admission_tolerance_bps);
    path_index_.resize(options_.classes.size());
    for (std::size_t c = 0; c < options_.classes.size(); ++c) {
      for (const auto& route : options_.classes[c].candidate_routes) {
        std::vector<signaling::PortController*> hops;
        hops.reserve(route.size());
        for (std::size_t link : route) hops.push_back(&ports_->port(link));
        path_index_[c].push_back(paths_.size());
        paths_.push_back(std::make_unique<signaling::SignalingPath>(
            std::move(hops), options_.per_hop_delay_s));
      }
    }

    const std::string& prefix = options_.metric_prefix;
    obs::Recorder* obs = options_.recorder;
    ctr_offered_ =
        obs::FindCounter(obs, (prefix + ".offered_calls").c_str());
    ctr_blocked_ =
        obs::FindCounter(obs, (prefix + ".blocked_calls").c_str());
    ctr_attempts_ =
        obs::FindCounter(obs, (prefix + ".upward_attempts").c_str());
    ctr_failures_ =
        obs::FindCounter(obs, (prefix + ".failed_attempts").c_str());

    // Resolve-once handles for the second-generation telemetry; all stay
    // nullptr (one dead branch per call site) unless the recorder carries
    // the matching subsystem.
    ts_live_calls_ =
        obs::FindSeries(obs, (prefix + ".live_calls").c_str());
    ts_renegs_ =
        obs::FindSeries(obs, (prefix + ".renegotiations").c_str());
    ts_denies_ =
        obs::FindSeries(obs, (prefix + ".reneg_denials").c_str());
    if (ts_live_calls_ != nullptr) {
      ts_links_.reserve(num_links);
      for (std::size_t l = 0; l < num_links; ++l) {
        const std::string name =
            prefix + ".link" + std::to_string(l) + ".reserved_bps";
        ts_links_.push_back(obs::FindSeries(obs, name.c_str()));
      }
    }
    span_hold_ = obs::FindSpan(obs, (prefix + ".span.call_hold_s").c_str());
    span_reneg_rtt_ =
        obs::FindSpan(obs, (prefix + ".span.reneg_rtt_s").c_str());

    result_.per_class.resize(options_.classes.size());
    for (ClassTotals& totals : result_.per_class) {
      totals.interval_attempts.assign(window_.intervals(), 0);
      totals.interval_failures.assign(window_.intervals(), 0);
    }
    result_.util_by_interval.assign(
        num_links, std::vector<double>(window_.intervals(), 0.0));
    result_.util_total.assign(num_links, 0.0);

    if (options_.fault_plan != nullptr && !options_.fault_plan->empty()) {
      injector_ = std::make_unique<fault::FaultInjector>(
          options_.fault_plan, &engine_, num_links, options_.recorder);
      ctr_rerouted_ =
          obs::FindCounter(obs, (prefix + ".rerouted_calls").c_str());
      ctr_dropped_ =
          obs::FindCounter(obs, (prefix + ".dropped_calls").c_str());
    }

    // Ladder wiring. `ladders_on_` turns on delivered-utility accounting;
    // `upgrades_enabled_` (some class can actually downgrade, i.e. depth
    // >= 2) registers the ladder counters and allocates the per-link
    // upgrade-pass dedupe. Depth-1 ladders deliberately register nothing:
    // FindCounter inserts the name into the metrics snapshot even at 0,
    // and the depth-1 golden outputs are pinned byte-identical to scalar.
    for (const TrafficClass& cls : options_.classes) {
      if (!cls.ladder.empty()) ladders_on_ = true;
      if (cls.ladder.depth() >= 2) upgrades_enabled_ = true;
    }
    if (ladders_on_) utility_rate_.assign(options_.classes.size(), 0.0);
    if (upgrades_enabled_) {
      ctr_downgraded_ =
          obs::FindCounter(obs, (prefix + ".downgraded_admits").c_str());
      ctr_upgrades_ = obs::FindCounter(obs, (prefix + ".upgrades").c_str());
      pass_pending_.assign(num_links, 0);
    }

    // Capacity hints: pre-size the call arena, the event queue (one
    // pending transition per active call + one arrival per class) and
    // the per-VCI audit tables for the expected concurrency, so a
    // million-call run does not pay repeated rehash/reallocation.
    const std::size_t peak = ExpectedPeakCalls();
    store_.Reserve(peak);
    engine_.Reserve(peak + options_.classes.size() + 16);
    if (options_.track_connections) ports_->ReserveConnections(peak);
    if (Lossy()) renegotiators_.reserve(peak);
  }

  SimulationResult Run() {
    engine_.set_advance_hook([this](double from, double to) {
      window_.Integrate(from, to,
                        [this](std::size_t k, double start, double end) {
                          for (std::size_t l = 0; l < ports_->size(); ++l) {
                            const double reserved =
                                ports_->port(l).utilization_bps();
                            result_.util_by_interval[l][k] +=
                                reserved * (end - start);
                            result_.util_total[l] += reserved * (end - start);
                          }
                          if (ladders_on_) {
                            for (std::size_t c = 0; c < utility_rate_.size();
                                 ++c) {
                              result_.per_class[c].utility_seconds +=
                                  utility_rate_[c] * (end - start);
                            }
                          }
                        });
    });
    engine_.set_dispatcher([this](const EventPayload& event) {
      switch (event.kind) {
        case kEvArrival:
          OnArrival(static_cast<std::size_t>(event.a));
          break;
        case kEvTransition:
          OnRateChange({static_cast<std::uint32_t>(event.a), event.gen},
                       static_cast<std::size_t>(event.b));
          break;
        case kEvDeparture:
          OnDeparture({static_cast<std::uint32_t>(event.a), event.gen});
          break;
        case kEvUpgradePass:
          RunUpgradePass(static_cast<std::size_t>(event.a));
          break;
        default:
          Require(false, "engine: unknown event payload kind");
      }
    });
    // Arm the fault plan before seeding arrivals, so a fault scheduled at
    // the same instant as a call event fires first (fixed order).
    if (injector_ != nullptr) {
      fault::FaultCallbacks callbacks;
      callbacks.on_link_down = [this](std::size_t link, double now) {
        OnLinkDown(link, now);
      };
      callbacks.on_controller_crash = [this](std::size_t link, double now) {
        OnControllerCrash(link, now);
      };
      injector_->Arm(std::move(callbacks));
    }
    // Seed one arrival per class, in class order (pinned draw order).
    for (std::size_t c = 0; c < options_.classes.size(); ++c) {
      ScheduleArrival(c);
    }
    engine_.RunUntil(window_.end_time());
    result_.events_processed = engine_.events_processed();
    result_.peak_concurrent_calls =
        static_cast<std::int64_t>(store_.peak_alive());
    return std::move(result_);
  }

 private:
  void Validate() const {
    Require(!profiles_.empty(), "engine: empty profile pool");
    Require(!options_.link_capacities_bps.empty(), "engine: no links");
    Require(!options_.classes.empty(), "engine: no traffic classes");
    Require(options_.interval_seconds > 0 && options_.sample_intervals > 0,
            "engine: need measurement intervals");
    Require(options_.admission_tolerance_bps >= 0,
            "engine: negative admission tolerance");
    const std::size_t num_links = options_.link_capacities_bps.size();
    for (double c : options_.link_capacities_bps) {
      Require(c > 0, "engine: link capacity must be positive");
    }
    for (const TrafficClass& cls : options_.classes) {
      Require(!cls.candidate_routes.empty(), "engine: class without routes");
      Require(cls.arrival_rate_per_s > 0,
              "engine: class arrival rate must be positive");
      Require(cls.uniform_profile_pick ||
                  cls.profile_index < profiles_.size(),
              "engine: profile index out of range");
      for (const auto& route : cls.candidate_routes) {
        Require(!route.empty(), "engine: empty route");
        for (std::size_t link : route) {
          Require(link < num_links, "engine: link index out of range");
        }
      }
    }
    if (Lossy()) {
      Require(options_.track_connections,
              "engine: lossy signaling needs tracked connections (resync)");
    }
    if (options_.fault_plan != nullptr && !options_.fault_plan->empty()) {
      Require(options_.track_connections,
              "engine: fault injection needs tracked connections "
              "(reroute and crash repair audit per-VCI rates)");
      Require(options_.fault_plan->max_link() < num_links,
              "engine: fault plan targets a link index out of range");
    }
  }

  bool Lossy() const {
    return options_.cell_loss_probability != 0 ||
           options_.resync_every_cells != 0 ||
           (options_.fault_plan != nullptr &&
            options_.fault_plan->has_bursts());
  }

  /// Little's-law estimate of the concurrency high-water mark when the
  /// caller does not supply one: sum of arrival rate × mean holding time
  /// over the classes, padded for fluctuation. Only a capacity hint.
  std::size_t ExpectedPeakCalls() const {
    if (options_.expected_peak_calls > 0) return options_.expected_peak_calls;
    double mean_pool_duration = 0;
    for (const CallProfile& profile : profiles_) {
      mean_pool_duration += profile.duration_seconds();
    }
    mean_pool_duration /= static_cast<double>(profiles_.size());
    double expected = 0;
    for (const TrafficClass& cls : options_.classes) {
      const double holding =
          cls.uniform_profile_pick
              ? mean_pool_duration
              : profiles_[cls.profile_index].duration_seconds();
      expected += cls.arrival_rate_per_s * holding;
    }
    expected = std::min(expected * 1.25 + 64.0, 4.0e6);
    return static_cast<std::size_t>(expected);
  }

  /// True unless an injected fault has the link down right now.
  bool LinkUp(std::size_t link) const {
    return injector_ == nullptr || injector_->timeline().link_up(link);
  }

  void ScheduleArrival(std::size_t c) {
    const double when =
        engine_.now() +
        rng_.Exponential(1.0 / options_.classes[c].arrival_rate_per_s);
    EventPayload payload;
    payload.kind = kEvArrival;
    payload.a = static_cast<std::uint64_t>(c);
    engine_.Post(when, payload);
  }

  bool RouteFits(const std::vector<std::size_t>& route,
                 double extra_bps) const {
    for (std::size_t link : route) {
      if (!LinkUp(link)) return false;
      if (ports_->port(link).utilization_bps() + extra_bps >
          options_.link_capacities_bps[link] +
              options_.admission_tolerance_bps) {
        return false;
      }
    }
    return true;
  }

  double BottleneckUtilization(const std::vector<std::size_t>& route) const {
    double worst = 0;
    for (std::size_t link : route) {
      worst = std::max(worst, ports_->port(link).utilization_bps() /
                                  options_.link_capacities_bps[link]);
    }
    return worst;
  }

  std::size_t BottleneckLink(const std::vector<std::size_t>& route) const {
    std::size_t best = route.front();
    double worst = -1.0;
    for (std::size_t link : route) {
      const double u = ports_->port(link).utilization_bps() /
                       options_.link_capacities_bps[link];
      if (u > worst) {
        worst = u;
        best = link;
      }
    }
    return best;
  }

  /// Granted rates of every active call crossing `link`, in the active
  /// index's iteration order. The index is an unordered_map keyed by call
  /// id with exactly the legacy active-map's insert/erase sequence, so
  /// its iteration order — and therefore the MBAC estimators' summation
  /// order — matches the pre-refactor map bit-for-bit (pinned).
  std::vector<double> RatesOn(std::size_t link) const {
    std::vector<double> rates;
    rates.reserve(index_.size());
    for (const auto& [id, handle] : index_) {
      for (std::size_t l : *store_.route(handle)) {
        if (l == link) {
          rates.push_back(store_.rate_bps(handle));
          break;
        }
      }
    }
    return rates;
  }

  struct RouteChoice {
    const std::vector<std::size_t>* route = nullptr;
    std::size_t candidate = 0;
  };

  /// Route selection: feasible candidates only; least-loaded picks the
  /// one with the smallest bottleneck utilization, otherwise first fit.
  RouteChoice SelectRoute(const TrafficClass& cls, double rate_bps) const {
    RouteChoice choice;
    double chosen_bottleneck = 2.0;
    for (std::size_t r = 0; r < cls.candidate_routes.size(); ++r) {
      const auto& route = cls.candidate_routes[r];
      if (!RouteFits(route, rate_bps)) continue;
      if (!options_.least_loaded_routing) {
        choice.route = &route;
        choice.candidate = r;
        break;
      }
      const double bottleneck = BottleneckUtilization(route);
      if (bottleneck < chosen_bottleneck) {
        choice.route = &route;
        choice.candidate = r;
        chosen_bottleneck = bottleneck;
      }
    }
    return choice;
  }

  /// Binds a lossy renegotiator to the call's slab slot (slot = store
  /// handle; the slab replaces the old per-call unique_ptr map and is
  /// never iterated, so behavior is unchanged).
  void MakeRenegotiator(std::uint32_t handle, signaling::SignalingPath* path,
                        std::uint64_t id, double rate_bps) {
    signaling::LossyChannelOptions lossy;
    lossy.cell_loss_probability = options_.cell_loss_probability;
    lossy.resync_every_cells = options_.resync_every_cells;
    lossy.recorder = options_.signaling_recorder;
    if (injector_ != nullptr) {
      lossy.conditions = &injector_->timeline().conditions();
    }
    if (handle >= renegotiators_.size()) {
      renegotiators_.resize(static_cast<std::size_t>(handle) + 1);
    }
    renegotiators_[handle].emplace(path, id, rate_bps, lossy, &rng_);
  }

  signaling::LossyPathRenegotiator* Renegotiator(std::uint32_t handle) {
    if (handle >= renegotiators_.size() ||
        !renegotiators_[handle].has_value()) {
      return nullptr;
    }
    return &*renegotiators_[handle];
  }

  void DropRenegotiator(std::uint32_t handle) {
    if (handle < renegotiators_.size()) renegotiators_[handle].reset();
  }

  void OnArrival(std::size_t c) {
    const TrafficClass& cls = options_.classes[c];
    // Schedule the next arrival regardless of the admission outcome.
    ScheduleArrival(c);
    ClassTotals& totals = result_.per_class[c];
    ++totals.offered_calls;
    if (ctr_offered_ != nullptr) ctr_offered_->Add();

    const std::size_t pick =
        cls.uniform_profile_pick
            ? static_cast<std::size_t>(rng_.UniformInt(
                  0, static_cast<std::int64_t>(profiles_.size()) - 1))
            : cls.profile_index;
    const CallProfile& profile = profiles_[pick];
    const std::int64_t shift =
        rng_.UniformInt(0, profile.rates_bps.length() - 1);
    const double initial_rate =
        CallStore::RotatedInitialRate(profile.rates_bps, shift);
    const double now = engine_.now();

    // Walk the class's ladder best rung first and grant the first rung
    // that both physically fits a candidate route and passes the
    // admission policy. A scalar class is the one-iteration r = 0 walk
    // (AdmitAtRung(.., 0) dispatches to the policy's binary Admit), so
    // the scalar path executes the exact legacy operation sequence.
    const RateLadder& ladder = cls.ladder;
    const std::size_t depth = ladder.empty() ? 1 : ladder.depth();
    const std::vector<std::size_t>* chosen = nullptr;
    std::size_t chosen_candidate = 0;
    std::uint32_t granted_rung = 0;
    double granted_rate = initial_rate;
    bool physically_fits = false;
    bool admitted = false;
    for (std::size_t r = 0; r < depth && !admitted; ++r) {
      const double rung_rate =
          ladder.empty() ? initial_rate : ladder.RateAt(r, initial_rate);
      const RouteChoice selected = SelectRoute(cls, rung_rate);
      if (selected.route == nullptr) continue;
      physically_fits = true;
      bool ok = true;
      if (options_.policy != nullptr) {
        const std::size_t link = BottleneckLink(*selected.route);
        const std::vector<double> rates = RatesOn(link);
        const LinkView view{options_.link_capacities_bps[link],
                            ports_->port(link).utilization_bps(), &rates};
        ok = options_.policy->AdmitAtRung(now, view, rung_rate, r);
      }
      if (ok) {
        admitted = true;
        chosen = selected.route;
        chosen_candidate = selected.candidate;
        granted_rung = static_cast<std::uint32_t>(r);
        granted_rate = rung_rate;
      }
    }
    if (!admitted) {
      ++totals.blocked_calls;
      if (ctr_blocked_ != nullptr) ctr_blocked_->Add();
      if (options_.trace_style == TraceStyle::kSingleLink) {
        obs::Emit(options_.recorder, now, obs::EventKind::kAdmitReject,
                  next_call_id_, {"rate_bps", initial_rate},
                  {"reserved_bps", ports_->port(0).utilization_bps()},
                  {"by_capacity", physically_fits ? 0.0 : 1.0});
      } else {
        obs::Emit(options_.recorder, now, obs::EventKind::kAdmitReject,
                  next_call_id_, {"class", static_cast<double>(c)},
                  {"rate_bps", initial_rate});
      }
      return;
    }

    const std::uint64_t id = next_call_id_++;
    signaling::SignalingPath& path =
        *paths_[path_index_[c][chosen_candidate]];
    Require(path.SetupConnection(id, granted_rate, granted_rung),
            "engine: signaling rejected a pre-checked setup");
    const CallRef ref = store_.Allocate(
        id, profile.rates_bps, shift, profile.slot_seconds, now,
        granted_rate, static_cast<std::uint32_t>(c), chosen,
        static_cast<std::uint32_t>(path_index_[c][chosen_candidate]));
    store_.set_base_rate_bps(ref.handle, initial_rate);
    store_.set_rung(ref.handle, granted_rung);
    index_.emplace(id, ref.handle);
    if (Lossy()) {
      MakeRenegotiator(ref.handle, &path, id, granted_rate);
      Renegotiator(ref.handle)->set_rung(granted_rung);
    }
    if (options_.policy != nullptr) {
      options_.policy->OnAdmitted(now, id, granted_rate);
    }
    if (granted_rung > 0) {
      ++totals.downgraded_admits;
      if (ctr_downgraded_ != nullptr) ctr_downgraded_->Add();
    }
    if (ladders_on_) utility_rate_[c] += ClassUtility(c, granted_rung);
    if (options_.trace_style == TraceStyle::kSingleLink) {
      obs::Emit(options_.recorder, now, obs::EventKind::kAdmitAccept, id,
                {"rate_bps", granted_rate},
                {"reserved_bps", ports_->port(0).utilization_bps()},
                {"rung", static_cast<double>(granted_rung)});
    } else {
      obs::Emit(options_.recorder, now, obs::EventKind::kAdmitAccept, id,
                {"class", static_cast<double>(c)},
                {"rate_bps", granted_rate},
                {"hops", static_cast<double>(chosen->size())},
                {"rung", static_cast<double>(granted_rung)});
    }
    SampleLiveCalls(now);
    SampleRoute(*chosen, now);
    ScheduleTransition(ref, 1);
  }

  /// Utility-per-second a class-`c` call delivers at `rung` (scalar
  /// classes in a mixed run count full utility).
  double ClassUtility(std::size_t c, std::uint32_t rung) const {
    const RateLadder& ladder = options_.classes[c].ladder;
    return ladder.empty() ? 1.0 : ladder.utility(rung);
  }

  void ScheduleTransition(const CallRef& ref, std::size_t next_step) {
    EventPayload payload;
    payload.gen = ref.gen;
    payload.a = ref.handle;
    if (store_.HasStep(ref.handle, next_step)) {
      payload.kind = kEvTransition;
      payload.b = next_step;
      engine_.Post(store_.StepTime(ref.handle, next_step), payload);
    } else {
      payload.kind = kEvDeparture;
      engine_.Post(store_.DepartureTime(ref.handle), payload);
    }
  }

  /// Carries the renegotiation to the ports — directly over the path, or
  /// through the lossy channel when one is configured. `rung` is the
  /// ladder rung the call lands on if granted (0 for scalar contracts);
  /// the cells carry it so the ports' upgrade queues follow the call.
  bool RequestRate(std::uint32_t handle, double new_rate, double now,
                   std::uint32_t rung = 0) {
    if (signaling::LossyPathRenegotiator* lossy = Renegotiator(handle)) {
      const std::uint32_t rung_before = lossy->rung();
      lossy->set_rung(rung);
      const bool accepted = lossy->Renegotiate(new_rate, now);
      if (accepted) {
        store_.set_rate_bps(handle, lossy->believed_rate_bps());
      } else {
        // Denied: the call stays at its previous rung, so later cells
        // must keep carrying it.
        lossy->set_rung(rung_before);
      }
      return accepted;
    }
    const std::uint64_t id = store_.id(handle);
    const signaling::PathOutcome outcome =
        paths_[store_.path_index(handle)]
            ->RequestDelta(id, new_rate - store_.rate_bps(handle), now,
                           rung);
    if (span_reneg_rtt_ != nullptr) {
      span_reneg_rtt_->Record(outcome.round_trip_s);
    }
    if (outcome.accepted) store_.set_rate_bps(handle, new_rate);
    return outcome.accepted;
  }

  void OnRateChange(const CallRef& ref, std::size_t step) {
    if (!store_.Alive(ref)) return;
    const std::uint32_t h = ref.handle;
    const double now = engine_.now();
    const double new_base = store_.StepRate(h, step);
    const RateLadder& ladder = options_.classes[store_.class_index(h)].ladder;
    const std::uint32_t rung = store_.rung(h);
    // A downgraded call keeps its rung across schedule steps: the whole
    // schedule is scaled by the rung (lower resolution, same
    // renegotiation pattern). Rung 0 multiplies bit-exactly, so scalar
    // and depth-1 runs see the unscaled step rate.
    const double new_rate =
        ladder.empty() ? new_base : ladder.RateAt(rung, new_base);
    if (!ladder.empty()) store_.set_base_rate_bps(h, new_base);
    const double old_rate = store_.rate_bps(h);
    const std::uint64_t id = store_.id(h);
    if (new_rate <= old_rate) {
      // Decreases always succeed (and, on a lossy channel, may be lost —
      // the unacked source moves its belief either way).
      RequestRate(h, new_rate, now, rung);
      store_.set_rate_bps(h, new_rate);
      if (options_.policy != nullptr) {
        options_.policy->OnRateChange(now, id, old_rate, new_rate);
      }
      // The decrease freed capacity on every link of the route — give
      // downgraded calls waiting there a chance to climb.
      if (upgrades_enabled_ && new_rate < old_rate) {
        SchedulePromotionPasses(*store_.route(h));
      }
    } else {
      ClassTotals& totals = result_.per_class[store_.class_index(h)];
      ++totals.upward_attempts;
      if (ctr_attempts_ != nullptr) ctr_attempts_->Add();
      const std::int64_t idx = window_.IntervalIndex(now);
      if (idx >= 0) {
        ++totals.interval_attempts[static_cast<std::size_t>(idx)];
      }
      // A route with a failed link cannot carry the request cell at all:
      // the increase is denied without consulting (or drawing loss for)
      // any port.
      bool accepted = false;
      if (RouteLinksUp(*store_.route(h))) {
        accepted = RequestRate(h, new_rate, now, rung);
      }
      if (accepted) {
        if (options_.policy != nullptr) {
          options_.policy->OnRateChange(now, id, old_rate, new_rate);
        }
        if (options_.trace_style == TraceStyle::kSingleLink) {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegGrant, id,
                    {"old_bps", old_rate}, {"new_bps", new_rate},
                    {"reserved_bps", ports_->port(0).utilization_bps()});
        } else {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegGrant, id,
                    {"class", static_cast<double>(store_.class_index(h))},
                    {"old_bps", old_rate}, {"new_bps", new_rate});
        }
        if (ts_renegs_ != nullptr) ts_renegs_->Sample(now, 1.0);
        SampleRoute(*store_.route(h), now);
      } else {
        ++totals.failed_attempts;
        if (ctr_failures_ != nullptr) ctr_failures_->Add();
        if (idx >= 0) {
          ++totals.interval_failures[static_cast<std::size_t>(idx)];
        }
        // Full-grant-or-nothing: the call keeps its old reservation.
        if (options_.trace_style == TraceStyle::kSingleLink) {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegDeny, id,
                    {"old_bps", old_rate}, {"new_bps", new_rate},
                    {"reserved_bps", ports_->port(0).utilization_bps()});
        } else {
          obs::Emit(options_.recorder, now, obs::EventKind::kRenegDeny, id,
                    {"class", static_cast<double>(store_.class_index(h))},
                    {"old_bps", old_rate}, {"new_bps", new_rate});
        }
        if (ts_denies_ != nullptr) ts_denies_->Sample(now, 1.0);
      }
    }
    ScheduleTransition(ref, step + 1);
  }

  bool RouteLinksUp(const std::vector<std::size_t>& route) const {
    for (std::size_t link : route) {
      if (!LinkUp(link)) return false;
    }
    return true;
  }

  /// Posts one upgrade-pass event per link of `route` that has waiters
  /// (deduped per link while a pass is pending). The pass rides the
  /// calendar queue at `now`, so promotions run after the current event
  /// finishes, at a deterministic (time, seq) position.
  void SchedulePromotionPasses(const std::vector<std::size_t>& route) {
    for (std::size_t link : route) {
      if (pass_pending_[link] != 0) continue;
      if (ports_->port(link).upgrade_waiters().empty()) continue;
      pass_pending_[link] = 1;
      EventPayload payload;
      payload.kind = kEvUpgradePass;
      payload.a = static_cast<std::uint64_t>(link);
      engine_.Post(engine_.now(), payload);
    }
  }

  /// Tries to promote every call waiting on `link`, in ascending call-id
  /// order (the queue is sorted by VCI == call id). Each promotion goes
  /// through the normal renegotiation path, so a grant consumes capacity
  /// that later waiters in the same pass then contend for.
  void RunUpgradePass(std::size_t link) {
    pass_pending_[link] = 0;
    const double now = engine_.now();
    // Promotions edit the queue (a grant to rung 0 removes the waiter),
    // so iterate a snapshot.
    const std::vector<std::uint64_t> waiters =
        ports_->port(link).upgrade_waiters();
    for (std::uint64_t id : waiters) {
      const auto it = index_.find(id);
      if (it == index_.end()) continue;
      TryPromote(it->second, now);
    }
  }

  /// One promotion attempt: walk the rungs above the call's current one,
  /// best first, and take the first the whole route grants. Denied
  /// attempts roll back byte-exactly and the call keeps waiting.
  void TryPromote(std::uint32_t h, double now) {
    const std::size_t c = store_.class_index(h);
    const RateLadder& ladder = options_.classes[c].ladder;
    const std::uint32_t cur = store_.rung(h);
    if (ladder.empty() || cur == 0) return;
    if (!RouteLinksUp(*store_.route(h))) return;
    const std::uint64_t id = store_.id(h);
    for (std::uint32_t target = 0; target < cur; ++target) {
      const double target_rate =
          ladder.RateAt(target, store_.base_rate_bps(h));
      if (!RequestRate(h, target_rate, now, target)) continue;
      store_.set_rung(h, target);
      utility_rate_[c] += ladder.utility(target) - ladder.utility(cur);
      ++result_.per_class[c].upgrades;
      if (ctr_upgrades_ != nullptr) ctr_upgrades_->Add();
      obs::Emit(options_.recorder, now, obs::EventKind::kCallUpgrade, id,
                {"class", static_cast<double>(c)},
                {"from_rung", static_cast<double>(cur)},
                {"to_rung", static_cast<double>(target)},
                {"rate_bps", store_.rate_bps(h)});
      SampleRoute(*store_.route(h), now);
      return;
    }
  }

  void SampleLiveCalls(double now) {
    if (ts_live_calls_ != nullptr) {
      ts_live_calls_->Sample(now,
                             static_cast<double>(store_.alive_count()));
    }
  }

  /// Samples reserved bandwidth on every link of `route` — called at the
  /// mutation points (admit, grant, teardown) so the series tracks each
  /// change without touching the per-event advance hook.
  void SampleRoute(const std::vector<std::size_t>& route, double now) {
    if (ts_links_.empty()) return;
    for (std::size_t link : route) {
      ts_links_[link]->Sample(now, ports_->port(link).utilization_bps());
    }
  }

  /// Active calls whose route crosses `link`, ascending call id — the
  /// fixed processing order fault handlers use (the active index's own
  /// iteration order is not deterministic across platforms).
  std::vector<std::uint64_t> CallsCrossing(std::size_t link) const {
    std::vector<std::uint64_t> ids;
    for (const auto& [id, handle] : index_) {
      for (std::size_t l : *store_.route(handle)) {
        if (l == link) {
          ids.push_back(id);
          break;
        }
      }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  void OnLinkDown(std::size_t link, double now) {
    for (std::uint64_t id : CallsCrossing(link)) {
      RerouteOrDrop(id, link, now);
    }
  }

  /// A link failure severed this call's route: move it to a feasible
  /// alternate candidate at its current rate, or drop it mid-service.
  void RerouteOrDrop(std::uint64_t id, std::size_t failed_link, double now) {
    const std::uint32_t h = index_.at(id);
    const std::size_t c = store_.class_index(h);
    const double rate = store_.rate_bps(h);
    ClassTotals& totals = result_.per_class[c];
    // Release the dead route first so an alternate sharing healthy links
    // with it sees the freed capacity.
    const std::vector<std::size_t>* old_route = store_.route(h);
    paths_[store_.path_index(h)]->TeardownConnection(id, rate);
    DropRenegotiator(h);
    if (upgrades_enabled_) SchedulePromotionPasses(*old_route);
    const RouteChoice alternate = SelectRoute(options_.classes[c], rate);
    if (alternate.route != nullptr) {
      signaling::SignalingPath& path =
          *paths_[path_index_[c][alternate.candidate]];
      Require(path.SetupConnection(id, rate, store_.rung(h)),
              "engine: signaling rejected a pre-checked reroute");
      store_.set_route(h, alternate.route);
      store_.set_path_index(
          h, static_cast<std::uint32_t>(path_index_[c][alternate.candidate]));
      if (Lossy()) {
        MakeRenegotiator(h, &path, id, rate);
        Renegotiator(h)->set_rung(store_.rung(h));
      }
      ++totals.rerouted_calls;
      if (ctr_rerouted_ != nullptr) ctr_rerouted_->Add();
      obs::Emit(options_.recorder, now, obs::EventKind::kCallRerouted, id,
                {"class", static_cast<double>(c)},
                {"link", static_cast<double>(failed_link)},
                {"rate_bps", rate});
      SampleRoute(*alternate.route, now);
    } else {
      // No feasible alternate: the network loses the call. Pending
      // transition events for the handle become no-ops, like a departure.
      if (ladders_on_) {
        utility_rate_[c] -= ClassUtility(c, store_.rung(h));
      }
      if (options_.policy != nullptr) {
        options_.policy->OnDeparture(now, id, rate);
      }
      ++totals.dropped_calls;
      if (ctr_dropped_ != nullptr) ctr_dropped_->Add();
      obs::Emit(options_.recorder, now, obs::EventKind::kCallDropped, id,
                {"class", static_cast<double>(c)},
                {"link", static_cast<double>(failed_link)},
                {"rate_bps", rate});
      // A dropped call's lifetime ends here: it still gets a hold span.
      if (span_hold_ != nullptr) {
        span_hold_->Record(now - store_.start_time(h));
      }
      index_.erase(id);
      store_.Release(h);
      SampleLiveCalls(now);
    }
  }

  /// The port controller on `link` crashed and restarted empty. The
  /// existing absolute-rate resync is the repair (Sec. III-B): every call
  /// crossing the link resyncs its believed rate along its whole path,
  /// rebuilding the port's per-VCI table and aggregate utilization.
  void OnControllerCrash(std::size_t link, double now) {
    ports_->port(link).CrashRestart();
    for (std::uint64_t id : CallsCrossing(link)) {
      const std::uint32_t h = index_.at(id);
      if (signaling::LossyPathRenegotiator* lossy = Renegotiator(h)) {
        lossy->Resync(now);
      } else {
        paths_[store_.path_index(h)]->Resync(id, store_.rate_bps(h), now,
                                             store_.rung(h));
      }
    }
  }

  void OnDeparture(const CallRef& ref) {
    if (!store_.Alive(ref)) return;
    const std::uint32_t h = ref.handle;
    const double now = engine_.now();
    const double rate = store_.rate_bps(h);
    const std::uint64_t id = store_.id(h);
    // Untracked ports release the hint; tracked ports release what they
    // actually reserved (which under loss may differ from the belief).
    paths_[store_.path_index(h)]->TeardownConnection(id, rate);
    if (ladders_on_) {
      utility_rate_[store_.class_index(h)] -=
          ClassUtility(store_.class_index(h), store_.rung(h));
    }
    // The departure freed this call's reservation on every link it
    // crossed — promote downgraded calls waiting there.
    if (upgrades_enabled_) SchedulePromotionPasses(*store_.route(h));
    if (options_.policy != nullptr) {
      options_.policy->OnDeparture(now, id, rate);
    }
    if (options_.trace_style == TraceStyle::kSingleLink) {
      obs::Emit(options_.recorder, now, obs::EventKind::kCallDeparture, id,
                {"rate_bps", rate},
                {"reserved_bps", ports_->port(0).utilization_bps()});
    } else {
      obs::Emit(options_.recorder, now, obs::EventKind::kCallDeparture, id,
                {"class", static_cast<double>(store_.class_index(h))},
                {"rate_bps", rate});
    }
    if (span_hold_ != nullptr) {
      span_hold_->Record(now - store_.start_time(h));
    }
    const std::vector<std::size_t>* route = store_.route(h);
    DropRenegotiator(h);
    index_.erase(id);
    store_.Release(h);
    SampleLiveCalls(now);
    SampleRoute(*route, now);
  }

  const std::vector<CallProfile>& profiles_;
  const SimulationOptions& options_;
  Rng& rng_;
  MeasurementWindow window_;
  Engine engine_;
  std::optional<signaling::PortShards> ports_;
  std::vector<std::unique_ptr<signaling::SignalingPath>> paths_;
  std::vector<std::vector<std::size_t>> path_index_;
  /// SoA slot-map of active calls (schedules, rates, routes).
  CallStore store_;
  /// Call id -> store handle. Kept as an unordered_map with the legacy
  /// active-map's exact insert/erase sequence: RatesOn iterates it, and
  /// that iteration order feeds the MBAC estimators' float sums, which
  /// the hexfloat regression pins fix bit-for-bit. Do not reserve() it —
  /// the legacy map never did, and the bucket-count trajectory is part
  /// of the iteration order.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  /// Lossy renegotiators, slab-indexed by store handle (only bound when
  /// the run is lossy; never iterated).
  std::vector<std::optional<signaling::LossyPathRenegotiator>>
      renegotiators_;
  std::uint64_t next_call_id_ = 1;
  std::unique_ptr<fault::FaultInjector> injector_;
  SimulationResult result_;
  /// Ladder accounting. `ladders_on_` = some class carries a ladder
  /// (delivered-utility integration active); `upgrades_enabled_` = some
  /// class can actually downgrade (depth >= 2 — registers the ladder
  /// counters and arms the upgrade passes). Depth-1 runs keep both event
  /// stream and metrics snapshot byte-identical to scalar.
  bool ladders_on_ = false;
  bool upgrades_enabled_ = false;
  /// Sum of alive calls' utility-per-second, per class (event-order
  /// deterministic; integrated by the advance hook).
  std::vector<double> utility_rate_;
  /// Per-link "an upgrade pass is already queued" dedupe.
  std::vector<std::uint8_t> pass_pending_;
  obs::Counter* ctr_downgraded_ = nullptr;
  obs::Counter* ctr_upgrades_ = nullptr;
  obs::Counter* ctr_offered_ = nullptr;
  obs::Counter* ctr_blocked_ = nullptr;
  obs::Counter* ctr_attempts_ = nullptr;
  obs::Counter* ctr_failures_ = nullptr;
  obs::Counter* ctr_rerouted_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::TimeSeries* ts_live_calls_ = nullptr;
  obs::TimeSeries* ts_renegs_ = nullptr;
  obs::TimeSeries* ts_denies_ = nullptr;
  /// Per-link reserved-bandwidth series (empty when sampling is off).
  std::vector<obs::TimeSeries*> ts_links_;
  obs::SpanHistogram* span_hold_ = nullptr;
  obs::SpanHistogram* span_reneg_rtt_ = nullptr;
};

}  // namespace

SimulationResult RunSimulation(const std::vector<CallProfile>& profiles,
                               const SimulationOptions& options, Rng& rng) {
  Simulation simulation(profiles, options, rng);
  return simulation.Run();
}

}  // namespace rcbr::sim::engine
