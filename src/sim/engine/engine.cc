#include "sim/engine/engine.h"

#include "util/error.h"

namespace rcbr::sim::engine {

void Engine::AdvanceTo(double to) {
  if (to <= clock_.now()) return;
  if (advance_hook_) advance_hook_(clock_.now(), to);
  clock_.AdvanceTo(to);
}

void Engine::RunUntil(double end_time) {
  while (!queue_.empty()) {
    const double when = queue_.next_time();
    if (when >= end_time) break;
    const ScheduledEvent event = queue_.Pop();
    AdvanceTo(when);
    ++events_processed_;
    if (event.payload.kind == kHandlerEvent) {
      EventQueue::Handler handler = queue_.TakeHandler(event.payload);
      handler();
    } else {
      Require(static_cast<bool>(dispatcher_),
              "Engine: payload event fired with no dispatcher installed");
      dispatcher_(event.payload);
    }
  }
  AdvanceTo(end_time);
}

}  // namespace rcbr::sim::engine
