#include "sim/engine/engine.h"

namespace rcbr::sim::engine {

void Engine::AdvanceTo(double to) {
  if (to <= clock_.now()) return;
  if (advance_hook_) advance_hook_(clock_.now(), to);
  clock_.AdvanceTo(to);
}

void Engine::RunUntil(double end_time) {
  while (!queue_.empty()) {
    const double when = queue_.next_time();
    if (when >= end_time) break;
    EventQueue::Handler handler = queue_.PopNext();
    AdvanceTo(when);
    handler();
  }
  AdvanceTo(end_time);
}

}  // namespace rcbr::sim::engine
