#include "sim/engine/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace rcbr::sim::engine {

void EventQueue::At(double time, Handler handler) {
  heap_.push_back({time, next_seq_++, std::move(handler)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

double EventQueue::next_time() const {
  Require(!heap_.empty(), "EventQueue::next_time: empty queue");
  return heap_.front().time;
}

EventQueue::Handler EventQueue::PopNext() {
  Require(!heap_.empty(), "EventQueue::PopNext: empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Handler handler = std::move(heap_.back().handler);
  heap_.pop_back();
  return handler;
}

}  // namespace rcbr::sim::engine
