#include "sim/engine/event_queue.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.h"

namespace rcbr::sim::engine {
namespace {

// Calendar sizing: aim for a handful of events per bucket so the lazy
// per-bucket sort stays tiny, and cap the bucket count so pathological
// time spreads cannot allocate unbounded header arrays.
constexpr std::size_t kTargetEventsPerBucket = 4;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;

}  // namespace

EventQueue::EventQueue(Impl impl) : impl_(impl) {}

void EventQueue::At(double time, Handler handler) {
  Require(static_cast<bool>(handler), "EventQueue::At: empty handler");
  std::uint64_t slot;
  if (!free_handler_slots_.empty()) {
    slot = free_handler_slots_.back();
    free_handler_slots_.pop_back();
    handlers_[static_cast<std::size_t>(slot)] = std::move(handler);
  } else {
    slot = handlers_.size();
    handlers_.push_back(std::move(handler));
  }
  EventPayload payload;
  payload.kind = kHandlerEvent;
  payload.a = slot;
  Push({time, next_seq_++, payload});
  ++size_;
}

void EventQueue::Post(double time, const EventPayload& payload) {
  Require(payload.kind != kHandlerEvent,
          "EventQueue::Post: kHandlerEvent is reserved for At()");
  Push({time, next_seq_++, payload});
  ++size_;
}

void EventQueue::Push(const ScheduledEvent& record) {
  Require(!std::isnan(record.time), "EventQueue: event time is NaN");
  if (impl_ == Impl::kBinaryHeap) {
    heap_.push_back(record);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return;
  }
  if (record.time < run_limit_) {
    // Into the sorted run (descending by fire order; back() earliest).
    // Same-time bursts land here with increasing seq, so the insertion
    // point is usually the very end — the scan is effectively O(1).
    const auto it =
        std::lower_bound(run_.begin(), run_.end(), record, Later{});
    run_.insert(it, record);
  } else if (window_active_ && record.time < window_end_) {
    buckets_[BucketIndex(record.time)].push_back(record);
  } else {
    overflow_.push_back(record);
  }
}

std::size_t EventQueue::BucketIndex(double time) const {
  const std::size_t nb = buckets_.size();
  double rel = (time - bucket_base_) / bucket_width_;
  if (!(rel >= 0)) rel = 0;
  std::size_t idx = rel >= static_cast<double>(nb)
                        ? nb - 1
                        : static_cast<std::size_t>(rel);
  if (idx < cur_bucket_) idx = cur_bucket_;
  // The division above may disagree with the exact boundary expression
  // BucketLower(i) = base + width*i in the last ulp; the pop path trusts
  // the boundaries, so fix the index up until they agree. (A misplaced
  // event in either direction would fire out of order.)
  while (idx > cur_bucket_ && time < BucketLower(idx)) --idx;
  while (idx + 1 < nb && time >= BucketLower(idx + 1)) ++idx;
  return idx;
}

void EventQueue::SettleRun() {
  while (run_.empty()) {
    if (window_active_) {
      while (cur_bucket_ < buckets_.size() && buckets_[cur_bucket_].empty()) {
        ++cur_bucket_;
      }
      if (cur_bucket_ < buckets_.size()) {
        run_.swap(buckets_[cur_bucket_]);
        std::sort(run_.begin(), run_.end(), Later{});
        ++cur_bucket_;
        // Everything earlier than the next bucket boundary is now in the
        // run, so same-window inserts below that boundary must join it.
        run_limit_ = cur_bucket_ < buckets_.size() ? BucketLower(cur_bucket_)
                                                   : window_end_;
        continue;
      }
      window_active_ = false;
      run_limit_ = window_end_;
    }
    if (overflow_.empty()) return;  // queue drained
    Repartition();
  }
}

void EventQueue::Repartition() {
  // Build a fresh bucket window spanning the overflow population. The
  // geometry only affects throughput, never ordering: every event is
  // placed by its exact time and buckets are sorted before popping.
  double tmin = overflow_.front().time;
  double tmax = tmin;
  for (const ScheduledEvent& r : overflow_) {
    tmin = std::min(tmin, r.time);
    tmax = std::max(tmax, r.time);
  }
  std::size_t nb = 1;
  while (nb < overflow_.size() / kTargetEventsPerBucket + 1 &&
         nb < kMaxBuckets) {
    nb <<= 1;
  }
  double width = (tmax - tmin) / static_cast<double>(nb);
  if (!(width > 0) || !std::isfinite(width)) width = 1.0;
  // The top boundary must strictly clear tmax, or the latest events
  // would loop straight back into overflow. Widen until it does (a
  // couple of doublings at most; guaranteed for finite times).
  while (tmin + width * static_cast<double>(nb) <= tmax) width *= 2;
  bucket_base_ = tmin;
  bucket_width_ = width;
  if (buckets_.size() != nb) buckets_.resize(nb);
  cur_bucket_ = 0;
  window_end_ = BucketLower(nb);
  run_limit_ = tmin;
  window_active_ = true;
  for (const ScheduledEvent& r : overflow_) {
    buckets_[BucketIndex(r.time)].push_back(r);
  }
  overflow_.clear();
}

double EventQueue::next_time() {
  Require(!empty(), "EventQueue::next_time: empty queue");
  if (impl_ == Impl::kBinaryHeap) return heap_.front().time;
  SettleRun();
  return run_.back().time;
}

ScheduledEvent EventQueue::Pop() {
  Require(!empty(), "EventQueue::Pop: empty queue");
  ScheduledEvent record;
  if (impl_ == Impl::kBinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    record = heap_.back();
    heap_.pop_back();
  } else {
    SettleRun();
    record = run_.back();
    run_.pop_back();
  }
  --size_;
  return record;
}

EventQueue::Handler EventQueue::PopNext() {
  Require(!empty(), "EventQueue::PopNext: empty queue");
  const ScheduledEvent record = Pop();
  Require(record.payload.kind == kHandlerEvent,
          "EventQueue::PopNext: front event has no handler");
  return TakeHandler(record.payload);
}

EventQueue::Handler EventQueue::TakeHandler(const EventPayload& payload) {
  Require(payload.kind == kHandlerEvent,
          "EventQueue::TakeHandler: not a handler event");
  const std::size_t slot = static_cast<std::size_t>(payload.a);
  Require(slot < handlers_.size() && static_cast<bool>(handlers_[slot]),
          "EventQueue::TakeHandler: stale handler slot");
  Handler handler = std::move(handlers_[slot]);
  handlers_[slot] = nullptr;
  free_handler_slots_.push_back(payload.a);
  return handler;
}

void EventQueue::Reserve(std::size_t n) {
  if (impl_ == Impl::kBinaryHeap) {
    heap_.reserve(n);
    return;
  }
  // New events land in overflow until the next repartition sweeps them
  // into buckets, so overflow is the array that must absorb the burst.
  overflow_.reserve(n);
}

}  // namespace rcbr::sim::engine
