// The one discrete-event loop every simulator in this tree runs on.
//
// The paper's efficiency argument (Sec. VI) is that RCBR only needs to
// simulate renegotiation events, not frames; this Engine is that event
// loop, extracted so the call-level simulator, the network simulator and
// the signaling plane all share it instead of carrying private copies.
//
// Loop semantics, pinned by tests/integration/regression_pins_test.cc:
//  * events fire in (time, seq) order — see EventQueue;
//  * RunUntil(end) fires events with time strictly before `end`; the
//    first event at or past `end` stays queued;
//  * before each event fires, the clock advances to its time and the
//    advance hook sees the movement [from, to) — drivers integrate
//    time-weighted measurements there;
//  * after the last due event, the clock advances to `end` (so the final
//    partial measurement interval is integrated too).
#pragma once

#include <functional>
#include <utility>

#include "sim/engine/event_queue.h"
#include "sim/engine/sim_clock.h"

namespace rcbr::sim::engine {

class Engine {
 public:
  /// Observes every clock movement; `from < to` always holds.
  using AdvanceHook = std::function<void(double from, double to)>;

  double now() const { return clock_.now(); }
  const SimClock& clock() const { return clock_; }

  void At(double time, EventQueue::Handler handler) {
    queue_.At(time, std::move(handler));
  }

  void set_advance_hook(AdvanceHook hook) { advance_hook_ = std::move(hook); }

  /// Drains events with time < end_time, then advances to end_time.
  void RunUntil(double end_time);

 private:
  void AdvanceTo(double to);

  SimClock clock_;
  EventQueue queue_;
  AdvanceHook advance_hook_;
};

}  // namespace rcbr::sim::engine
