// The one discrete-event loop every simulator in this tree runs on.
//
// The paper's efficiency argument (Sec. VI) is that RCBR only needs to
// simulate renegotiation events, not frames; this Engine is that event
// loop, extracted so the call-level simulator, the network simulator and
// the signaling plane all share it instead of carrying private copies.
//
// Loop semantics, pinned by tests/integration/regression_pins_test.cc:
//  * events fire in (time, seq) order — see EventQueue;
//  * RunUntil(end) fires events with time strictly before `end`; the
//    first event at or past `end` stays queued;
//  * before each event fires, the clock advances to its time and the
//    advance hook sees the movement [from, to) — drivers integrate
//    time-weighted measurements there;
//  * after the last due event, the clock advances to `end` (so the final
//    partial measurement interval is integrated too).
//
// Events come in two flavors sharing one total order: closure events
// (At), convenient for cold paths, and POD payload events (Post), which
// allocate nothing and are routed to the owner's dispatcher — the hot
// path that lets RunSimulation sustain 10^8+ events.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/engine/event_queue.h"
#include "sim/engine/sim_clock.h"

namespace rcbr::sim::engine {

class Engine {
 public:
  /// Observes every clock movement; `from < to` always holds.
  using AdvanceHook = std::function<void(double from, double to)>;

  /// Receives every POD payload event at its fire time (engine clock
  /// already advanced). Installed once per simulation, so hot events pay
  /// one indirect call instead of one heap-allocated closure each.
  using Dispatcher = std::function<void(const EventPayload&)>;

  explicit Engine(EventQueue::Impl impl = EventQueue::Impl::kCalendar)
      : queue_(impl) {}

  double now() const { return clock_.now(); }
  const SimClock& clock() const { return clock_; }

  void At(double time, EventQueue::Handler handler) {
    queue_.At(time, std::move(handler));
  }

  /// Schedules a POD payload event; requires a dispatcher before it fires.
  void Post(double time, const EventPayload& payload) {
    queue_.Post(time, payload);
  }

  void set_advance_hook(AdvanceHook hook) { advance_hook_ = std::move(hook); }
  void set_dispatcher(Dispatcher dispatcher) {
    dispatcher_ = std::move(dispatcher);
  }

  /// Pre-sizes the event queue for about `n` pending events.
  void Reserve(std::size_t n) { queue_.Reserve(n); }

  /// Events fired so far (closure and payload alike) across all RunUntil
  /// calls — the numerator of the macro-capacity events/sec metric.
  std::int64_t events_processed() const { return events_processed_; }

  /// Drains events with time < end_time, then advances to end_time.
  void RunUntil(double end_time);

 private:
  void AdvanceTo(double to);

  SimClock clock_;
  EventQueue queue_;
  AdvanceHook advance_hook_;
  Dispatcher dispatcher_;
  std::int64_t events_processed_ = 0;
};

}  // namespace rcbr::sim::engine
