// Arena-backed SoA storage for the calls of one RunSimulation.
//
// At 10^6 concurrent calls, a std::unordered_map<id, CallProcess> with a
// heap-allocated rotated step vector per call is the dominant cost of the
// setup/renegotiate/teardown hot paths. CallStore replaces it with dense
// parallel arrays indexed by a recycled 32-bit handle:
//  * CallHot — the fields every renegotiation event touches (rate, route,
//    path, class, id), cache-linear;
//  * RotatedSchedule — a *view* of the shared profile schedule rotated by
//    the call's random shift. It reproduces PiecewiseConstant::Rotate
//    (including the constructor's merge of the wrap-around seam) by index
//    arithmetic, so admitting a call allocates nothing and the step
//    values/times are bit-identical to materializing Rotate(shift)
//    (pinned by tests/sim/call_store_test.cc).
//
// Handles carry a generation counter: releasing a call bumps the slot's
// generation, so events scheduled against the old call (departures racing
// a mid-service drop, for example) are detected as stale by a single
// integer compare — no hash lookup, same observable behavior as the old
// map's failed find().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/piecewise.h"

namespace rcbr::sim::engine {

/// A call handle plus the generation it was issued under. Alive(ref) is
/// false once the slot has been released (and possibly reused).
struct CallRef {
  std::uint32_t handle = 0;
  std::uint32_t gen = 0;
};

class CallStore {
 public:
  /// Pre-sizes every array for about `n` concurrent calls.
  void Reserve(std::size_t n);

  /// Value of `base` rotated left by `shift`, at rotated slot 0 — the
  /// initial rate of an arriving call, computable before admitting it.
  static double RotatedInitialRate(const PiecewiseConstant& base,
                                   std::int64_t shift);

  /// Admits a call: binds a (possibly recycled) slot to `id` with the
  /// rotated-schedule view over `base`. The profile schedule is borrowed
  /// and must outlive the store.
  CallRef Allocate(std::uint64_t id, const PiecewiseConstant& base,
                   std::int64_t shift, double slot_seconds, double start_time,
                   double initial_rate, std::uint32_t class_index,
                   const std::vector<std::size_t>* route,
                   std::uint32_t path_index);

  /// Releases a slot (departure or drop); bumps its generation so any
  /// still-queued event carrying the old CallRef reads as dead.
  void Release(std::uint32_t h);

  bool Alive(const CallRef& ref) const {
    return ref.handle < gen_.size() && gen_[ref.handle] == ref.gen;
  }

  std::uint64_t id(std::uint32_t h) const { return hot_[h].id; }
  double rate_bps(std::uint32_t h) const { return hot_[h].rate_bps; }
  void set_rate_bps(std::uint32_t h, double v) { hot_[h].rate_bps = v; }

  /// Multi-resolution ladder state. `base_rate_bps` is the full-ask
  /// (rung-0) rate of the call's current schedule step; `rate_bps` above
  /// holds the granted (possibly downgraded) reservation. `rung` is the
  /// ladder rung the call currently occupies (0 for scalar contracts).
  /// Allocate resets both (base = the initial reservation, rung = 0).
  double base_rate_bps(std::uint32_t h) const {
    return hot_[h].base_rate_bps;
  }
  void set_base_rate_bps(std::uint32_t h, double v) {
    hot_[h].base_rate_bps = v;
  }
  std::uint32_t rung(std::uint32_t h) const { return hot_[h].rung; }
  void set_rung(std::uint32_t h, std::uint32_t r) { hot_[h].rung = r; }
  std::uint32_t class_index(std::uint32_t h) const {
    return hot_[h].class_index;
  }
  const std::vector<std::size_t>* route(std::uint32_t h) const {
    return hot_[h].route;
  }
  void set_route(std::uint32_t h, const std::vector<std::size_t>* route) {
    hot_[h].route = route;
  }
  std::uint32_t path_index(std::uint32_t h) const {
    return hot_[h].path_index;
  }
  void set_path_index(std::uint32_t h, std::uint32_t p) {
    hot_[h].path_index = p;
  }

  /// Rotated-schedule step walk — same contract as the old CallProcess:
  /// HasStep/StepRate/StepTime over the rotated step list, DepartureTime
  /// at start_time + length * slot_seconds.
  bool HasStep(std::uint32_t h, std::size_t step) const {
    return step < sched_[h].count;
  }
  double StepRate(std::uint32_t h, std::size_t step) const;
  double StepTime(std::uint32_t h, std::size_t step) const;
  double DepartureTime(std::uint32_t h) const;
  /// Number of steps in the rotated view (test hook).
  std::size_t StepCount(std::uint32_t h) const { return sched_[h].count; }

  /// Admission time of the call in slot `h` (span instrumentation).
  double start_time(std::uint32_t h) const { return sched_[h].start_time; }

  std::size_t alive_count() const { return alive_; }
  std::size_t peak_alive() const { return peak_alive_; }
  std::size_t slot_count() const { return gen_.size(); }

 private:
  struct CallHot {
    double rate_bps = 0;
    /// Full-ask rate of the current schedule step (== rate_bps unless the
    /// call runs downgraded on a ladder rung > 0).
    double base_rate_bps = 0;
    std::uint64_t id = 0;
    const std::vector<std::size_t>* route = nullptr;
    std::uint32_t path_index = 0;
    std::uint32_t class_index = 0;
    /// Ladder rung the call currently occupies (0 = full ask / scalar).
    std::uint32_t rung = 0;
  };

  // The lazy rotation: with n base steps, shift s in (0, length) and j0
  // the base segment containing slot s, Rotate(s) produces the step
  // values [v_j0 .. v_{n-1}, v_0 .. v_j2] (j2 = last base step starting
  // strictly before s), with the wrap-around seam v_{n-1}|v_0 merged by
  // the PiecewiseConstant constructor when the values are equal. The
  // view stores (first=j0, part1, part2_begin, count) and maps a rotated
  // step index back to a base step index; starts come from the same
  // expressions Rotate uses (start - s and start + (length - s)).
  struct SchedView {
    const PiecewiseConstant* base = nullptr;
    double slot_seconds = 1.0;
    double start_time = 0;
    std::int64_t shift = 0;      // normalized to [0, length)
    std::uint32_t first = 0;     // base index of rotated step 0
    std::uint32_t part1 = 0;     // steps taken from [first, n)
    std::uint32_t part2_begin = 0;  // 1 when the seam merged, else 0
    std::uint32_t count = 0;     // total rotated steps
  };

  std::int64_t StepStartSlot(const SchedView& v, std::size_t step) const;

  std::vector<CallHot> hot_;
  std::vector<SchedView> sched_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint32_t> free_;
  std::size_t alive_ = 0;
  std::size_t peak_alive_ = 0;
};

}  // namespace rcbr::sim::engine
