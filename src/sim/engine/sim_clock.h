// Simulation clock shared by every layer of the unified engine.
//
// One instance per simulation run; the Engine advances it monotonically
// and every component (drivers, signaling, observability) reads the same
// axis, so traces from the call level, the network and the RM-cell plane
// merge on simulation seconds.
#pragma once

namespace rcbr::sim::engine {

class SimClock {
 public:
  double now() const { return now_; }

  /// Monotone: moving backwards is a no-op.
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }

 private:
  double now_ = 0;
};

}  // namespace rcbr::sim::engine
