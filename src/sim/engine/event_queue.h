// Deterministic future-event list for the unified discrete-event engine.
//
// Events are POD records ordered by (time, seq): `seq` is a monotonically
// increasing schedule counter, so two events at the same instant always
// fire in the order they were scheduled. That tie-break is a pinned
// contract (see DESIGN.md and the regression pins): identical inputs
// produce identical event orders, which is what makes every seeded
// simulation bit-reproducible.
//
// Two backends implement the same total order:
//  * kCalendar (default) — a calendar/ladder queue: a sorted "run" of the
//    earliest events, a window of constant-width buckets ahead of it, and
//    an unsorted overflow list that is repartitioned into a fresh window
//    when the current one drains. Schedule and pop are O(1) amortized at
//    any pending-event count, which is what lets RunSimulation sustain
//    10^6+ concurrent calls (bench/macro_capacity).
//  * kBinaryHeap — the legacy binary min-heap, kept behind this runtime
//    switch for differential testing (tests/sim/event_queue_diff_test.cc
//    pins the two backends to identical pop sequences).
//
// Payloads are tagged PODs dispatched by the owner (see Engine); the
// legacy std::function API survives on top of a recycled handler slab,
// so cold-path users (fault injection, tests) keep closures while the
// hot call paths schedule plain records with zero allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rcbr::sim::engine {

/// Tagged POD payload of one scheduled event. `kind` values are
/// owner-defined (the engine routes them to its dispatcher), except
/// kHandlerEvent, which the queue reserves for the std::function API.
/// `gen` is conventionally a slot-map generation counter so owners can
/// detect stale events for recycled handles without a hash lookup.
struct EventPayload {
  std::uint32_t kind = 0;
  std::uint32_t gen = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Reserved payload kind: `a` indexes the queue's handler slab.
inline constexpr std::uint32_t kHandlerEvent = 0xffffffffu;

/// One queued event: fire time, the (time, seq) tie-break counter, and
/// the owner's payload.
struct ScheduledEvent {
  double time = 0;
  std::uint64_t seq = 0;
  EventPayload payload;
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Queue backend. kCalendar is the default; kBinaryHeap preserves the
  /// pre-calendar heap for differential testing. Both implement the
  /// identical (time, seq) pop order, so results never depend on the
  /// choice — only throughput does.
  enum class Impl { kCalendar, kBinaryHeap };

  explicit EventQueue(Impl impl = Impl::kCalendar);

  /// Schedules `handler` at absolute time `time`; same-time events fire
  /// in scheduling order. The handler lives in a recycled slab slot; the
  /// queued record is POD like any other event.
  void At(double time, Handler handler);

  /// Schedules a POD payload at absolute time `time` — the allocation-free
  /// hot path. `payload.kind` must not be kHandlerEvent.
  void Post(double time, const EventPayload& payload);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Fire time of the earliest event. Requires a non-empty queue.
  double next_time();

  /// Removes and returns the earliest event. Handler events must be
  /// resolved with TakeHandler before the record is dropped.
  ScheduledEvent Pop();

  /// Legacy API: removes the earliest event, which must be a handler
  /// event, and returns its handler.
  Handler PopNext();

  /// Moves the handler of a popped kHandlerEvent record out of the slab
  /// and recycles its slot.
  Handler TakeHandler(const EventPayload& payload);

  /// Pre-sizes internal storage for about `n` simultaneously pending
  /// events, so large runs do not pay repeated reallocation. Purely a
  /// capacity hint: never affects ordering.
  void Reserve(std::size_t n);

  Impl impl() const { return impl_; }

  /// Test hook: restarts the schedule counter at `next_seq`. The counter
  /// is 64-bit, so a real run cannot exhaust it (~1.8e19 schedules); the
  /// hook lets tests pin the same-time ordering contract right up to the
  /// last representable sequence number.
  void ResetSequenceForTest(std::uint64_t next_seq) { next_seq_ = next_seq; }
  std::uint64_t next_sequence() const { return next_seq_; }

 private:
  // Max-heap comparator on "fires later", which makes the heap front /
  // the sorted run's back the earliest (time, seq) — the same ordering
  // the legacy simulator loops used, preserved verbatim for the
  // regression pins.
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void Push(const ScheduledEvent& record);
  // Calendar internals. The invariants are:
  //  * run_ is sorted descending by (time, seq) (back() = earliest) and
  //    holds every queued event with time < run_limit_;
  //  * active bucket i (cur_bucket_ <= i < buckets_.size()) holds only
  //    events with BucketLower(i) <= time < BucketLower(i+1);
  //  * overflow_ holds only events with time >= window_end_.
  void SettleRun();
  void Repartition();
  std::size_t BucketIndex(double time) const;
  double BucketLower(std::size_t i) const {
    return bucket_base_ + bucket_width_ * static_cast<double>(i);
  }

  Impl impl_;
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;

  // Handler slab for the std::function API (slots recycled LIFO).
  std::vector<Handler> handlers_;
  std::vector<std::uint64_t> free_handler_slots_;

  // kBinaryHeap backend.
  std::vector<ScheduledEvent> heap_;

  // kCalendar backend.
  std::vector<ScheduledEvent> run_;
  std::vector<std::vector<ScheduledEvent>> buckets_;
  std::size_t cur_bucket_ = 0;
  double bucket_base_ = 0;
  double bucket_width_ = 1.0;
  double window_end_ = 0;
  double run_limit_ = 0;
  bool window_active_ = false;
  std::vector<ScheduledEvent> overflow_;
};

}  // namespace rcbr::sim::engine
