// Deterministic future-event list for the unified discrete-event engine.
//
// A binary min-heap ordered by (time, seq): `seq` is a monotonically
// increasing schedule counter, so two events at the same instant always
// fire in the order they were scheduled. That tie-break is a pinned
// contract (see DESIGN.md and the regression pins): identical inputs
// produce identical event orders, which is what makes every seeded
// simulation bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rcbr::sim::engine {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `time`; same-time events fire
  /// in scheduling order.
  void At(double time, Handler handler);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Fire time of the earliest event. Requires a non-empty queue.
  double next_time() const;

  /// Removes and returns the earliest event's handler.
  Handler PopNext();

  /// Test hook: restarts the schedule counter at `next_seq`. The counter
  /// is 64-bit, so a real run cannot exhaust it (~1.8e19 schedules); the
  /// hook lets tests pin the same-time ordering contract right up to the
  /// last representable sequence number.
  void ResetSequenceForTest(std::uint64_t next_seq) { next_seq_ = next_seq; }
  std::uint64_t next_sequence() const { return next_seq_; }

 private:
  struct Scheduled {
    double time = 0;
    std::uint64_t seq = 0;
    Handler handler;
  };
  // Max-heap comparator on "fires later", which makes the heap front the
  // earliest (time, seq) — the same ordering the legacy simulator loops
  // used, preserved verbatim for the regression pins.
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Scheduled> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rcbr::sim::engine
