// One admitted RCBR call inside the unified engine.
//
// "Each call is a randomly shifted version of a Star Wars RCBR schedule"
// (Sec. VI): a CallProcess walks that rotated stepwise-CBR schedule one
// step at a time. The engine schedules exactly one transition per step —
// a renegotiation to the step's rate, or the departure after the last
// step — using the same time arithmetic the legacy loops used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/piecewise.h"

namespace rcbr::sim::engine {

struct CallProcess {
  PiecewiseConstant schedule;
  double slot_seconds = 1.0;
  double start_time = 0;
  /// The source's granted (believed) rate; under lossy signaling the
  /// ports' view can drift from this.
  double rate_bps = 0;
  std::size_t class_index = 0;
  /// Chosen candidate route (link indices) and the signaling path built
  /// over it, both owned by the Simulation.
  const std::vector<std::size_t>* route = nullptr;
  std::size_t path_index = 0;

  bool HasStep(std::size_t step) const {
    return step < schedule.steps().size();
  }
  double StepRate(std::size_t step) const {
    return schedule.steps()[step].value;
  }
  double StepTime(std::size_t step) const {
    return start_time +
           static_cast<double>(schedule.steps()[step].start) * slot_seconds;
  }
  double DepartureTime() const {
    return start_time +
           static_cast<double>(schedule.length()) * slot_seconds;
  }
};

}  // namespace rcbr::sim::engine
