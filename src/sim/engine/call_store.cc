#include "sim/engine/call_store.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::sim::engine {
namespace {

/// Index of the base segment containing slot `s` (the largest step start
/// <= s). Steps are sorted by start with steps[0].start == 0.
std::size_t SegmentAt(const std::vector<Step>& steps, std::int64_t s) {
  const auto it = std::upper_bound(
      steps.begin(), steps.end(), s,
      [](std::int64_t slot, const Step& step) { return slot < step.start; });
  return static_cast<std::size_t>(it - steps.begin()) - 1;
}

}  // namespace

void CallStore::Reserve(std::size_t n) {
  hot_.reserve(n);
  sched_.reserve(n);
  gen_.reserve(n);
  free_.reserve(n);
}

double CallStore::RotatedInitialRate(const PiecewiseConstant& base,
                                     std::int64_t shift) {
  std::int64_t s = shift % base.length();
  if (s < 0) s += base.length();
  return base.steps()[SegmentAt(base.steps(), s)].value;
}

CallRef CallStore::Allocate(std::uint64_t id, const PiecewiseConstant& base,
                            std::int64_t shift, double slot_seconds,
                            double start_time, double initial_rate,
                            std::uint32_t class_index,
                            const std::vector<std::size_t>* route,
                            std::uint32_t path_index) {
  std::uint32_t h;
  if (!free_.empty()) {
    h = free_.back();
    free_.pop_back();
  } else {
    h = static_cast<std::uint32_t>(gen_.size());
    Require(gen_.size() < 0xffffffffu, "CallStore: handle space exhausted");
    hot_.emplace_back();
    sched_.emplace_back();
    gen_.push_back(0);
  }

  CallHot& hot = hot_[h];
  hot.rate_bps = initial_rate;
  hot.base_rate_bps = initial_rate;
  hot.id = id;
  hot.route = route;
  hot.path_index = path_index;
  hot.class_index = class_index;
  hot.rung = 0;

  const std::vector<Step>& steps = base.steps();
  const std::size_t n = steps.size();
  std::int64_t s = shift % base.length();
  if (s < 0) s += base.length();
  SchedView& view = sched_[h];
  view.base = &base;
  view.slot_seconds = slot_seconds;
  view.start_time = start_time;
  view.shift = s;
  if (s == 0) {
    view.first = 0;
    view.part1 = static_cast<std::uint32_t>(n);
    view.part2_begin = 0;
    view.count = static_cast<std::uint32_t>(n);
  } else {
    const std::size_t j0 = SegmentAt(steps, s);
    // Last base step starting strictly before s: j0 itself unless it
    // starts exactly at s.
    const std::size_t j2 = steps[j0].start < s ? j0 : j0 - 1;
    // Rotate's output runs [v_j0..v_{n-1}, v_0..v_j2]; the constructor
    // merges the v_{n-1}|v_0 seam when equal. No other merge is possible
    // (adjacent base steps already differ).
    const bool seam_merged = steps[0].value == steps[n - 1].value;
    view.first = static_cast<std::uint32_t>(j0);
    view.part1 = static_cast<std::uint32_t>(n - j0);
    view.part2_begin = seam_merged ? 1 : 0;
    view.count = static_cast<std::uint32_t>(
        (n - j0) + (j2 + 1) - (seam_merged ? 1 : 0));
  }

  ++alive_;
  peak_alive_ = std::max(peak_alive_, alive_);
  return {h, gen_[h]};
}

void CallStore::Release(std::uint32_t h) {
  ++gen_[h];
  hot_[h].route = nullptr;
  sched_[h].base = nullptr;
  free_.push_back(h);
  --alive_;
}

std::int64_t CallStore::StepStartSlot(const SchedView& v,
                                      std::size_t step) const {
  const std::vector<Step>& steps = v.base->steps();
  if (step < v.part1) {
    // Rotate pushes max(start - s, 0); only the first segment can clip.
    return step == 0 ? 0 : steps[v.first + step].start - v.shift;
  }
  const std::size_t i = v.part2_begin + (step - v.part1);
  return steps[i].start + (v.base->length() - v.shift);
}

double CallStore::StepRate(std::uint32_t h, std::size_t step) const {
  const SchedView& v = sched_[h];
  const std::vector<Step>& steps = v.base->steps();
  if (step < v.part1) return steps[v.first + step].value;
  return steps[v.part2_begin + (step - v.part1)].value;
}

double CallStore::StepTime(std::uint32_t h, std::size_t step) const {
  const SchedView& v = sched_[h];
  return v.start_time +
         static_cast<double>(StepStartSlot(v, step)) * v.slot_seconds;
}

double CallStore::DepartureTime(std::uint32_t h) const {
  const SchedView& v = sched_[h];
  return v.start_time +
         static_cast<double>(v.base->length()) * v.slot_seconds;
}

}  // namespace rcbr::sim::engine
