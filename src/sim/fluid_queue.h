// Slotted fluid queues with loss accounting.
//
// All queueing in the paper is modelled in slotted time (eq. 3):
//     q_t = max(q_{t-1} + a_t - r_t, 0),
// with bits above the buffer bound B counted as lost. SlottedQueue is the
// stateful primitive; DrainTrace runs a whole workload against a service
// process and reports the loss fraction, which is the QoS metric of every
// scenario in Fig. 3.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "obs/recorder.h"
#include "util/piecewise.h"

namespace rcbr::sim {

/// A single fluid queue. Quantities are in bits; one Step() is one slot.
class SlottedQueue {
 public:
  /// `buffer_bits` may be infinity for an unbounded queue. With a
  /// recorder, overflow and empty-transition slots emit kBufferOverflow /
  /// kBufferUnderflow events (time = slot index, id = `obs_id`) and
  /// aggregate loss counters.
  explicit SlottedQueue(double buffer_bits,
                        obs::Recorder* recorder = nullptr,
                        std::uint64_t obs_id = 0);

  /// Advances one slot: `arrival_bits` enter, up to `service_bits` drain.
  /// Returns the bits lost to buffer overflow in this slot.
  double Step(double arrival_bits, double service_bits);

  double occupancy_bits() const { return occupancy_; }
  double buffer_bits() const { return buffer_; }
  double lost_bits() const { return lost_; }
  double arrived_bits() const { return arrived_; }
  double max_occupancy_bits() const { return max_occupancy_; }

  /// Fraction of arrived bits lost so far (0 if nothing arrived).
  double LossFraction() const;

  void Reset();

 private:
  double buffer_;
  double occupancy_ = 0;
  double lost_ = 0;
  double arrived_ = 0;
  double max_occupancy_ = 0;
  std::int64_t slot_ = 0;
  /// True while the previous slot lost bits — the flight recorder only
  /// triggers on the loss-free -> overflow transition.
  bool overflowing_ = false;
  obs::Recorder* obs_ = nullptr;
  std::uint64_t obs_id_ = 0;
  obs::Counter* overflow_slots_ = nullptr;
  obs::TimeSeries* ts_occupancy_ = nullptr;
};

/// Result of draining a complete workload through a queue.
struct DrainResult {
  double arrived_bits = 0;
  double lost_bits = 0;
  double max_occupancy_bits = 0;

  double loss_fraction() const {
    return arrived_bits > 0 ? lost_bits / arrived_bits : 0.0;
  }
};

/// Drains per-slot arrivals against a constant service rate (bits/slot).
DrainResult DrainConstant(const std::vector<double>& arrival_bits,
                          double service_bits_per_slot, double buffer_bits,
                          obs::Recorder* recorder = nullptr);

/// Drains per-slot arrivals against a piecewise-constant service process
/// (bits/slot, same slot domain as the arrivals).
DrainResult DrainSchedule(const std::vector<double>& arrival_bits,
                          const PiecewiseConstant& service_bits_per_slot,
                          double buffer_bits,
                          obs::Recorder* recorder = nullptr);

/// The smallest constant service rate (bits/slot) that drains the workload
/// with zero loss given `buffer_bits`, up to `tolerance` (relative).
/// This is the empirical equivalent bandwidth of the workload at loss 0.
double MinLosslessRate(const std::vector<double>& arrival_bits,
                       double buffer_bits, double relative_tolerance = 1e-6);

inline constexpr double kInfiniteBuffer =
    std::numeric_limits<double>::infinity();

}  // namespace rcbr::sim
