// The multi-resolution call contract (ROADMAP: admission with
// downgrading, after Fricker et al., arXiv 1604.00894).
//
// A scalar-rate call asks the network for exactly one stepwise-CBR
// schedule: admission either grants the full ask or blocks the call. A
// RateLadder generalizes that contract to an ordered ladder of acceptable
// resolutions: rung 0 is the full ask, and each lower rung r scales the
// whole schedule by `scale[r]` (a lower video resolution keeps the
// renegotiation *pattern* but shrinks every rate by a constant factor).
// Under saturation the network admits at the highest feasible rung
// instead of blocking, and departures trigger upgrades back toward rung
// 0 — the user-initiated counterpart of the PR 4 graceful-degradation
// machine, which imposes lower rates from the network side.
//
// Each rung carries a delivered utility-per-second; the simulator
// integrates utility over the time a call spends on each rung, so a
// bench can weigh "more calls at lower resolution" against "fewer calls
// at full resolution".
//
// The scalar contract is the depth-1 ladder {scale 1.0, utility 1.0}:
// every layer that consumes a ladder is written so a depth-1 ladder
// executes the exact legacy operation sequence (same RNG draws, same
// float ops), which the ladder-identity regression tests pin
// byte-for-byte.
#pragma once

#include <cstddef>
#include <vector>

namespace rcbr::sim {

/// One acceptable resolution of a call.
struct RateRung {
  /// Multiplier on the full-ask schedule, in (0, 1]; rung 0 must be 1.0.
  double scale = 1.0;
  /// Delivered utility per second while the call runs at this rung.
  double utility = 1.0;
};

/// An ordered ladder of acceptable resolutions, best first. An empty
/// ladder means "scalar contract" (equivalent to the depth-1 ladder).
class RateLadder {
 public:
  RateLadder() = default;

  /// Validates on construction: non-empty `rungs`, scale[0] == 1.0,
  /// scales finite, positive and non-increasing, utilities finite and
  /// non-negative. Throws InvalidArgument otherwise.
  explicit RateLadder(std::vector<RateRung> rungs);

  /// Convenience: rungs from parallel scale/utility vectors (sizes must
  /// match; same validation).
  static RateLadder FromScales(const std::vector<double>& scales,
                               const std::vector<double>& utilities);

  /// The depth-1 ladder — the scalar contract spelled as a ladder.
  static RateLadder Scalar() { return RateLadder({RateRung{1.0, 1.0}}); }

  bool empty() const { return rungs_.empty(); }
  std::size_t depth() const { return rungs_.size(); }
  const RateRung& rung(std::size_t r) const { return rungs_[r]; }
  const std::vector<RateRung>& rungs() const { return rungs_; }

  /// `full_ask_bps` scaled to rung `r`. Rung 0 returns the argument
  /// bit-exactly (scale 1.0 multiplies exactly).
  double RateAt(std::size_t r, double full_ask_bps) const {
    const double scale = rungs_[r].scale;
    return scale == 1.0 ? full_ask_bps : full_ask_bps * scale;
  }

  double utility(std::size_t r) const { return rungs_[r].utility; }

 private:
  std::vector<RateRung> rungs_;
};

}  // namespace rcbr::sim
