#include "sim/rate_ladder.h"

#include <cmath>
#include <utility>

#include "util/error.h"

namespace rcbr::sim {

RateLadder::RateLadder(std::vector<RateRung> rungs)
    : rungs_(std::move(rungs)) {
  Require(!rungs_.empty(), "RateLadder: need at least one rung (depth 0)");
  Require(rungs_.front().scale == 1.0,
          "RateLadder: rung 0 must carry the full ask (scale 1.0)");
  double previous = 2.0;
  for (const RateRung& rung : rungs_) {
    Require(std::isfinite(rung.scale) && rung.scale > 0,
            "RateLadder: rung scales must be finite and positive");
    Require(rung.scale <= 1.0, "RateLadder: rung scales must be <= 1");
    Require(rung.scale <= previous,
            "RateLadder: rung scales must be non-increasing");
    Require(std::isfinite(rung.utility) && rung.utility >= 0,
            "RateLadder: rung utilities must be finite and non-negative");
    previous = rung.scale;
  }
}

RateLadder RateLadder::FromScales(const std::vector<double>& scales,
                                  const std::vector<double>& utilities) {
  Require(scales.size() == utilities.size(),
          "RateLadder: scales and utilities must have the same depth");
  std::vector<RateRung> rungs;
  rungs.reserve(scales.size());
  for (std::size_t r = 0; r < scales.size(); ++r) {
    rungs.push_back(RateRung{scales[r], utilities[r]});
  }
  return RateLadder(std::move(rungs));
}

}  // namespace rcbr::sim
