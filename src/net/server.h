// rcbrd: the RCBR daemon.
//
// One Server is a network edge running the paper's per-port admission
// logic (signaling::PortController) behind a TCP control channel. Each
// accepted connection is one RCBR session: the client opens with a
// Hello (setup or absolute-rate resync after a crash), renegotiates
// with Delta/Resync frames that map 1:1 onto RmCells, and streams
// piecewise-CBR data that the server meters against the granted rate
// using the client's own slot stamps — so conformance checking is
// deterministic, independent of socket scheduling.
//
// Failure model implemented here:
//  * strict decoding — any malformed frame draws a kError reply and a
//    close, never a crash or a hang;
//  * per-direction strictly increasing sequence numbers — duplicates
//    and stale replays are protocol errors;
//  * a wall-clock client deadline — a silent peer is closed and its
//    reservation kept (the tracked rate survives for the resync);
//  * InjectCrash(): total state loss (PortController::CrashRestart) and
//    every connection dropped, as if the daemon was kill -9'd and
//    restarted. crash_generation() lets an impairment proxy hold the
//    line down until the wipe has really happened;
//  * RequestDrain(): graceful SIGTERM — stop accepting, piggyback a
//    Drain notice on the next control response of every session, deny
//    rate increases, let sessions finish with Bye/ByeAck.
//
// Serve() is a single-threaded poll loop; Stop/RequestDrain/InjectCrash
// are thread-safe flags it observes at the top of each iteration.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/recorder.h"
#include "signaling/port_controller.h"

namespace rcbr::net {

struct ServerOptions {
  /// Listen port on 127.0.0.1; 0 = kernel-assigned (read back via port()).
  std::uint16_t port = 0;
  /// Port capacity handed to the admission controller.
  double capacity_bps = 10e6;
  /// Admission slack (see PortController).
  double admission_tolerance_bps = 1e-9;
  /// Poll-loop tick; bounds how fast control flags are observed.
  int poll_interval_ms = 10;
  /// A connection silent for this long is presumed dead and closed.
  /// Generous vs loopback RTT: this is a failure detector, not a pacer.
  int client_deadline_ms = 5000;
  /// Metering burst allowance, in client slots' worth of the granted
  /// rate. Sending faster than the grant for longer than this draws
  /// kRateViolation.
  double meter_tolerance_slots = 4;
  /// Self-drain once any frame's slot stamp reaches this value — a
  /// deterministic stand-in for SIGTERM in chaos runs, triggered on the
  /// client's logical clock instead of the wall's (-1 = only external
  /// RequestDrain, which is what rcbrd's real SIGTERM handler calls).
  std::int64_t drain_at_slot = -1;
  obs::Recorder* recorder = nullptr;
};

struct ServerStats {
  std::int64_t sessions_opened = 0;
  std::int64_t sessions_closed = 0;
  std::int64_t frames_in = 0;
  std::int64_t data_frames = 0;
  std::int64_t data_bytes = 0;
  std::int64_t admits = 0;
  std::int64_t admit_denies = 0;
  std::int64_t resyncs = 0;
  std::int64_t grants = 0;
  std::int64_t denies = 0;
  std::int64_t heartbeats = 0;
  std::int64_t byes = 0;
  std::int64_t crashes = 0;
  std::int64_t drains_notified = 0;
  std::int64_t protocol_errors = 0;
  std::int64_t deadline_closes = 0;
  std::int64_t rate_violations = 0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  /// Binds the listener. False when the port is unavailable.
  bool Start();

  /// The bound port (valid after Start; useful with options.port = 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Runs the poll loop until Stop(). Call from a dedicated thread (or
  /// let rcbrd_main call it directly).
  void Serve();

  /// Thread-safe: makes Serve() return after the current iteration.
  void Stop() { stop_.store(true, std::memory_order_release); }

  /// Thread-safe: graceful-drain mode (the SIGTERM path).
  void RequestDrain() { drain_.store(true, std::memory_order_release); }

  /// Thread-safe: wipe all admission state and drop every connection,
  /// as a crash + restart would. Completion is observable through
  /// crash_generation().
  void InjectCrash() { crash_pending_.store(true, std::memory_order_release); }

  /// Increments once per completed InjectCrash wipe.
  std::uint64_t crash_generation() const {
    return crash_generation_.load(std::memory_order_acquire);
  }

  bool draining() const { return drain_.load(std::memory_order_acquire); }

  // ---- Post-run inspection: call only after Serve() has returned. ----
  double TrackedRate(std::uint64_t vci) const;
  bool IsUpgradeWaiter(std::uint64_t vci) const;
  double utilization_bps() const;
  const ServerStats& stats() const { return stats_; }

 private:
  struct Connection;

  void CrashNow();
  void HandleReadable(Connection& conn);
  /// Dispatches one decoded frame; false = close this connection.
  bool HandleFrame(Connection& conn, const Frame& frame);
  bool HandleHello(Connection& conn, const Frame& frame);
  bool SendFrames(Connection& conn, const std::vector<Frame>& frames);
  /// Emits kError{code} (best effort) and marks the connection dead.
  void ProtocolError(Connection& conn, WireError code);
  /// The Drain notice due before the next control response, if any.
  void MaybePiggybackDrain(Connection& conn, std::vector<Frame>& frames);
  Frame Reply(Connection& conn, FrameType type, const Frame& request) const;

  ServerOptions options_;
  TcpListener listener_;
  signaling::PortController port_controller_;
  std::vector<std::unique_ptr<Connection>> connections_;
  ServerStats stats_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  std::atomic<bool> crash_pending_{false};
  std::atomic<std::uint64_t> crash_generation_{0};
};

}  // namespace rcbr::net
