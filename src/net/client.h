// rcbr_client: the RCBR end system over the TCP control channel.
//
// One Client is the paper's source brought to the socket world: a seeded
// multi-time-scale VBR arrival process feeds a fixed-size end-system
// buffer (sim::SlottedQueue) drained at the currently granted rate; the
// AR(1) heuristic (core::OnlineRateController) watches the live buffer
// and triggers renegotiations; the multi-resolution ladder
// (sim::RateLadder) shapes connect-time downgrades and periodic upgrade
// probes. Drained bits leave as slot-stamped kData frames the server
// meters against the grant.
//
// Time has two axes, deliberately separate:
//  * the logical slot clock — the only axis in the session log and on
//    the wire. Control transactions that time out or back off charge
//    whole slots to it (arrivals keep accruing; nothing is sent), so a
//    seeded run produces the same slot-stamped event sequence no matter
//    how the wall clock jitters;
//  * wall-clock deadlines — pure failure detectors with generous
//    margins over loopback RTT. They decide only *that* an attempt
//    failed, never which slot it failed at.
//
// Failure model (the client half):
//  * control transactions are blocking with a response deadline; a
//    timeout first rescinds in-flight state with an absolute-rate
//    resync at the acknowledged rate/rung (the RetryingRenegotiator
//    rescind discipline verbatim), then backs off per the shared
//    signaling::BackoffSeconds contract and retransmits, bounded by
//    RetryOptions::max_retries;
//  * a dead connection (EOF, reset, resync timeout) triggers reconnect
//    with the same bounded backoff, then a Hello{resync} that repairs
//    the restarted server byte-exactly from the client's acknowledged
//    rate, followed by a StateQuery audit (desyncs are recorded, the
//    chaos gate requires zero);
//  * a server Drain notice freezes the contract, drains the buffer at
//    the held grant, and closes with Bye/ByeAck.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/online_heuristic.h"
#include "net/session_log.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/recorder.h"
#include "signaling/retry.h"
#include "sim/fluid_queue.h"
#include "sim/rate_ladder.h"
#include "util/rng.h"

namespace rcbr::net {

/// Seeded two-time-scale VBR source: a slow on/off scene chain switches
/// the mean rate, a fast lognormal factor jitters every slot — the
/// "multiple time-scale traffic" of the paper's title, miniaturized.
struct TrafficOptions {
  double quiet_bits_per_slot = 16e3;
  double burst_bits_per_slot = 64e3;
  /// Mean scene dwell, slots (geometric).
  double scene_mean_slots = 32;
  /// Sigma of the per-slot lognormal factor (mean-1 normalized).
  double sigma_log = 0.3;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t vci = 1;

  /// Sim seconds per slot; also advertised to the server (as
  /// microseconds) so metering runs on the same clock.
  double slot_seconds = 0.01;
  /// Session length, slots.
  std::int64_t slots = 400;
  /// End-system buffer, bits.
  double buffer_bits = 256e3;

  core::HeuristicOptions heuristic;
  /// Empty = scalar contract.
  sim::RateLadder ladder;
  TrafficOptions traffic;

  /// Sim-time timeout/backoff contract for control transactions and
  /// reconnects (timeout_s and BackoffSeconds are charged to the slot
  /// clock; max_retries bounds in-connection retransmits).
  signaling::RetryOptions retry;
  /// Wall-clock failure detector per control response.
  int response_deadline_ms = 250;
  /// Wall-clock budget for one TCP dial.
  int connect_timeout_ms = 250;
  /// Re-dial attempts after a dead connection before giving up.
  std::int64_t max_reconnects = 5;

  std::int64_t heartbeat_every_slots = 16;
  /// Rung-promotion probe period (0 = never; ignored without a ladder).
  std::int64_t upgrade_every_slots = 64;
  std::size_t chunk_bytes = 1200;

  std::uint64_t seed = 1;
  obs::Recorder* recorder = nullptr;
};

struct ClientStats {
  std::int64_t slots = 0;          // normal slots stepped
  std::int64_t charged_slots = 0;  // slots consumed by timeouts/backoffs
  double arrived_bits = 0;
  double lost_bits = 0;
  std::int64_t data_frames = 0;
  std::int64_t sent_bytes = 0;
  std::int64_t acked_bytes = 0;  // server's last cumulative kDataAck
  std::int64_t grants = 0;
  std::int64_t denies = 0;
  std::int64_t timeouts = 0;   // response deadlines missed
  std::int64_t holds = 0;      // renegotiations abandoned (budget spent)
  std::int64_t heartbeats = 0;
  std::int64_t upgrades = 0;
  std::int64_t reconnect_attempts = 0;
  std::int64_t reconnects = 0;  // successful re-dial + resync repairs
  std::int64_t resyncs = 0;     // absolute-rate rescind/repair cells
  std::int64_t desyncs = 0;     // StateQuery audits that disagreed
  std::int64_t stale_responses = 0;
  std::int64_t drain_notices = 0;
  bool completed = false;  // Bye acknowledged
  bool gave_up = false;    // reconnect budget exhausted

  double loss_fraction() const {
    return arrived_bits > 0 ? lost_bits / arrived_bits : 0.0;
  }
};

class Client {
 public:
  explicit Client(const ClientOptions& options);
  ~Client();

  /// Runs the whole session: connect (walking the ladder), slot loop,
  /// graceful Bye. False when admission was refused outright or the
  /// reconnect budget ran out mid-session.
  bool Run();

  const ClientStats& stats() const { return stats_; }
  const SessionLog& log() const { return log_; }
  double granted_bps() const { return granted_bps_; }
  std::uint32_t rung() const { return rung_; }
  std::int64_t slot() const { return slot_; }

 private:
  enum class TxStatus : std::uint8_t {
    kOk,        // expected response received
    kTimedOut,  // retry budget exhausted, connection still standing
    kConnLost,  // the connection is dead; reconnect or give up
  };

  double granted_bits_per_slot() const {
    return granted_bps_ * options_.slot_seconds;
  }
  double NextArrivalBits();
  /// Burns `n` slots on the logical clock: arrivals accrue, nothing
  /// drains or transmits (the source is busy signaling / disconnected).
  void ChargeSlots(std::int64_t n);
  std::int64_t SlotsFor(double seconds) const;

  bool SendFrame(Frame frame);
  /// Drains everything already buffered on the socket (data acks, async
  /// errors). False = connection lost.
  bool PollIncoming();
  /// Processes one inbound frame outside a transaction. False = fatal.
  bool HandleAsyncFrame(const Frame& frame);
  /// Blocks until a frame of `expect` stamped with `expect_slot`
  /// arrives; piggybacked Drain notices and data acks are absorbed,
  /// stale responses discarded.
  TxStatus AwaitResponse(FrameType expect, std::uint32_t expect_slot,
                         Frame* out);
  /// One bounded-retry control transaction: send, await, on timeout
  /// rescind-with-resync + backoff + retransmit.
  TxStatus Transaction(Frame request, FrameType expect, Frame* response);

  bool DialAndHello(bool resync);
  bool ConnectSession();   // fresh connect: ladder walk
  bool Reconnect();        // bounded re-dial + resync repair + audit
  void VerifyServerState();
  bool StepSlot();         // one normal slot; false = session over
  void TryUpgrade();
  void Shutdown();         // Bye / ByeAck

  ClientOptions options_;
  Rng traffic_rng_;
  Rng backoff_rng_;

  TcpStream stream_;
  FrameDecoder decoder_;
  std::uint64_t next_seq_out_ = 1;
  std::uint64_t last_seq_in_ = 0;
  bool saw_seq_in_ = false;

  std::unique_ptr<core::OnlineRateController> controller_;
  sim::SlottedQueue queue_;

  std::int64_t slot_ = 0;
  double granted_bps_ = 0;
  std::uint32_t rung_ = 0;
  double full_ask_bps_ = 0;
  double carry_bits_ = 0;

  // Traffic scene chain.
  bool scene_burst_ = false;
  std::int64_t scene_remaining_ = 0;

  std::int64_t next_heartbeat_slot_ = 0;
  std::int64_t next_upgrade_slot_ = 0;

  bool connected_ = false;
  bool drain_requested_ = false;
  bool session_done_ = false;

  ClientStats stats_;
  SessionLog log_;
};

}  // namespace rcbr::net
