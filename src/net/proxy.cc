#include "net/proxy.h"

#include <poll.h>

#include <algorithm>

#include "util/rng.h"

namespace rcbr::net {

namespace {

/// Stateless drop draw: a uniform in [0, 1) that depends only on
/// (seed, direction, frame seq). Two runs with the same seed make the
/// same call for every frame no matter how the bytes were batched.
double HashUniform(std::uint64_t seed, bool from_client,
                   std::uint64_t seq) {
  const std::uint64_t dir_seed = DeriveStreamSeed(seed, from_client ? 1 : 2);
  const std::uint64_t u = DeriveStreamSeed(dir_seed, seq);
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}

bool IsControlFrame(FrameType type) {
  return type != FrameType::kData && type != FrameType::kDataAck;
}

}  // namespace

struct Proxy::Pair {
  TcpStream client;
  TcpStream server;
  FrameDecoder from_client;
  FrameDecoder from_server;
  bool dead = false;
};

Proxy::Proxy(const ProxyOptions& options)
    : options_(options),
      schedule_(options.plan, options.slots_per_second) {}

Proxy::~Proxy() = default;

bool Proxy::Start() {
  auto listener = TcpListener::Bind(options_.listen_port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  return true;
}

void Proxy::FireCrashesUpTo(std::int64_t slot) {
  const auto crashes = schedule_.CrashesIn(crash_watermark_, slot);
  crash_watermark_ = std::max(crash_watermark_, slot);
  if (crashes.empty()) return;
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    ++stats_.crashes_fired;
    obs::Count(options_.recorder, "net.proxy.crashes_fired");
    if (options_.on_controller_crash) options_.on_controller_crash();
  }
  // The server is wiped: every proxied connection dies with it.
  sever_all_ = true;
}

bool Proxy::LetThrough(const Frame& frame, bool from_client) {
  const std::int64_t slot = static_cast<std::int64_t>(frame.slot);
  if (schedule_.LinkDownAt(0, slot)) {
    ++stats_.dropped_down;
    obs::Count(options_.recorder, "net.proxy.dropped_down");
    return false;
  }
  if (IsControlFrame(frame.type)) {
    // Signaling-channel impairments (the paper's RM-cell bursts).
    if (schedule_.ExtraDelaySecondsAt(slot) > options_.late_threshold_s) {
      ++stats_.dropped_late;
      obs::Count(options_.recorder, "net.proxy.dropped_late");
      return false;
    }
    const double p = schedule_.LossProbabilityAt(slot);
    if (p > 0 && HashUniform(options_.seed, from_client, frame.seq) < p) {
      ++stats_.dropped_loss;
      obs::Count(options_.recorder, "net.proxy.dropped_loss");
      return false;
    }
  }
  return true;
}

void Proxy::PumpSide(Pair& pair, bool from_client) {
  TcpStream& in = from_client ? pair.client : pair.server;
  TcpStream& out = from_client ? pair.server : pair.client;
  FrameDecoder& decoder = from_client ? pair.from_client : pair.from_server;

  std::uint8_t buf[4096];
  for (;;) {
    const RecvResult r = in.RecvSome(buf, sizeof(buf), 0);
    if (r.status == RecvStatus::kTimeout) break;
    if (r.status != RecvStatus::kData) {
      pair.dead = true;
      break;
    }
    decoder.Feed(buf, r.bytes);
  }
  Frame frame;
  for (;;) {
    const DecodeStatus status = decoder.Next(frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kError) {
      // The proxy is transparent: it cannot re-frame a corrupt stream,
      // so the pair dies and both endpoints see EOF.
      ++stats_.decode_failures;
      obs::Count(options_.recorder, "net.proxy.decode_failures");
      pair.dead = true;
      return;
    }
    if (from_client) {
      // The client's slot stamps are the proxy's clock; crashes fire
      // the moment a frame first reaches their tick. The triggering
      // frame dies with the connection — the server it was addressed
      // to no longer exists.
      FireCrashesUpTo(static_cast<std::int64_t>(frame.slot));
      if (sever_all_) return;
    }
    if (!LetThrough(frame, from_client)) continue;
    const std::vector<std::uint8_t> bytes = Encode(frame);
    if (!out.SendAll(bytes.data(), bytes.size())) {
      pair.dead = true;
      return;
    }
    ++stats_.frames_forwarded;
  }
}

void Proxy::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> pfds;
    pfds.reserve(pairs_.size() * 2 + 1);
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& pair : pairs_) {
      pfds.push_back({pair->client.fd(), POLLIN, 0});
      pfds.push_back({pair->server.fd(), POLLIN, 0});
    }
    const int rc =
        ::poll(pfds.data(), pfds.size(), options_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;

    if (rc > 0 && (pfds[0].revents & POLLIN) != 0) {
      while (auto client = listener_.Accept(0)) {
        auto server = TcpStream::Connect(options_.server_host,
                                         options_.server_port, 1000);
        if (!server) {
          // Server unreachable: refuse by closing, the client's dial
          // succeeded but its Hello will meet EOF and retry.
          continue;
        }
        auto pair = std::make_unique<Pair>();
        pair->client = std::move(*client);
        pair->server = std::move(*server);
        pairs_.push_back(std::move(pair));
        ++stats_.pairs_opened;
        obs::Count(options_.recorder, "net.proxy.pairs_opened");
      }
    }

    for (std::size_t i = 0; i < pairs_.size(); ++i) {
      Pair& pair = *pairs_[i];
      const short client_re =
          1 + 2 * i < pfds.size() ? pfds[1 + 2 * i].revents : 0;
      const short server_re =
          2 + 2 * i < pfds.size() ? pfds[2 + 2 * i].revents : 0;
      if (!pair.dead && !sever_all_ &&
          (client_re & (POLLIN | POLLHUP | POLLERR)) != 0) {
        PumpSide(pair, /*from_client=*/true);
      }
      if (!pair.dead && !sever_all_ &&
          (server_re & (POLLIN | POLLHUP | POLLERR)) != 0) {
        PumpSide(pair, /*from_client=*/false);
      }
    }
    if (sever_all_) {
      for (auto& pair : pairs_) pair->dead = true;
      sever_all_ = false;
    }
    pairs_.erase(std::remove_if(pairs_.begin(), pairs_.end(),
                                [](const std::unique_ptr<Pair>& p) {
                                  return p->dead;
                                }),
                 pairs_.end());
  }
  pairs_.clear();
}

}  // namespace rcbr::net
