// The RCBR control-channel wire format.
//
// The daemon promotes the in-process signaling vocabulary — delta /
// resync RM cells, grants, rollbacks, rungs (rm_cell.h) — onto a TCP
// byte stream. Every frame is length-prefixed:
//
//   u32 payload_len | payload
//   payload = u8 type | u32 slot | u64 seq | type-specific body
//
// All integers are little-endian fixed-width; rates are IEEE-754
// doubles carried as their u64 bit pattern, so "the client and server
// agree on the granted rate byte-exactly" is checkable with memcmp.
// `slot` is the sender's logical slot clock (the client's slot counter;
// server frames echo the request's slot) — the deterministic time axis
// the impairment proxy keys its fault schedule to. `seq` is a strictly
// increasing per-direction session sequence number; the receiver treats
// a duplicate or stale value as a protocol error.
//
// The decoder is strict: oversized length prefixes, unknown types,
// short or over-long bodies, and NaN/Inf rate fields are protocol
// errors, never crashes, hangs, or silent accepts. A decoder that has
// reported an error stays in the error state (the connection is dead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcbr::net {

/// Hard ceiling on the payload of one frame (type + slot + seq + body).
/// Control frames are tens of bytes; data frames carry at most one
/// chunk. A length prefix above this is rejected before any allocation.
inline constexpr std::uint32_t kMaxPayloadBytes = 1 << 16;

/// Bytes of the fixed payload header: type (1) + slot (4) + seq (8).
inline constexpr std::uint32_t kPayloadHeaderBytes = 13;

enum class FrameType : std::uint8_t {
  kHello = 1,         // c->s: vci, absolute rate, rung, resync flag, slot_us
  kWelcome = 2,       // s->c: accepted, granted rate, rung
  kDelta = 3,         // c->s: rate difference, rung (RmCell::Delta)
  kResync = 4,        // c->s: absolute rate, rung (RmCell::Resync)
  kGrant = 5,         // s->c: absolute rate after applying, rung
  kDeny = 6,          // s->c: standing rate, rung
  kHeartbeat = 7,     // c->s: liveness probe
  kHeartbeatAck = 8,  // s->c
  kData = 9,          // c->s: metered chunk (opaque bytes)
  kDataAck = 10,      // s->c: cumulative conforming bytes received
  kDrain = 11,        // s->c: hold last grant, drain, then Bye
  kBye = 12,          // c->s: session complete
  kByeAck = 13,       // s->c
  kError = 14,        // either: protocol error, connection is closing
  kStateQuery = 15,   // c->s: report your tracked rate/rung for my vci
  kStateReport = 16,  // s->c: tracked rate bits, rung, known flag
};

/// The stable wire name of a frame type (logs and error strings).
const char* FrameTypeName(FrameType type);

/// Protocol error codes carried by kError frames.
enum class WireError : std::uint32_t {
  kNone = 0,
  kOversizedFrame = 1,   // length prefix above kMaxPayloadBytes
  kTruncatedFrame = 2,   // body shorter than the type requires / EOF mid-frame
  kUnknownType = 3,
  kTrailingBytes = 4,    // body longer than the type defines
  kNonFiniteRate = 5,    // NaN or Inf in a rate field
  kStaleSequence = 6,    // seq <= last seen on this direction
  kBadHandshake = 7,     // first frame was not Hello / Hello after setup
  kNotAdmitted = 8,      // data/delta before a successful Hello
  kRateViolation = 9,    // metering found sustained over-grant sending
  kServerDraining = 10,  // increase refused while draining
};

const char* WireErrorName(WireError code);

/// One decoded frame. Unused fields are zero for a given type.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t slot = 0;
  std::uint64_t seq = 0;

  std::uint64_t vci = 0;         // kHello
  double rate_bps = 0;           // kHello/kWelcome/kResync/kGrant/kDeny/kStateReport
  double delta_bps = 0;          // kDelta
  std::uint32_t rung = 0;        // kHello/kWelcome/kDelta/kResync/kGrant/kDeny/kStateReport
  bool accepted = false;         // kWelcome
  bool resync = false;           // kHello: reconnect repair, not fresh setup
  bool known = false;            // kStateReport: vci present in the table
  std::uint32_t slot_us = 0;     // kHello: client slot duration, microseconds
  std::uint32_t error_code = 0;  // kError
  std::uint64_t total_bytes = 0; // kDataAck
  std::vector<std::uint8_t> data;  // kData chunk payload
};

/// Appends the canonical encoding of `frame` to `out`. Encoding is
/// total: any Frame with finite rates encodes; the strict checks live in
/// the decoder. Throws InvalidArgument for a kData frame larger than
/// kMaxPayloadBytes.
void EncodeFrame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Convenience: the encoding as a fresh buffer.
std::vector<std::uint8_t> Encode(const Frame& frame);

enum class DecodeStatus : std::uint8_t {
  kFrame,     // one frame decoded
  kNeedMore,  // buffer holds no complete frame yet
  kError,     // protocol error; the decoder is poisoned
};

/// Incremental strict decoder over a TCP byte stream. Feed() appends
/// received bytes; Next() extracts at most one frame per call.
class FrameDecoder {
 public:
  void Feed(const std::uint8_t* bytes, std::size_t n);

  /// Decodes the next complete frame into `out`. On kError the decoder
  /// stays poisoned (`error()` / `error_message()` describe why) and
  /// every later call returns the same error.
  DecodeStatus Next(Frame& out);

  WireError error() const { return error_; }
  const std::string& error_message() const { return error_message_; }

  /// Bytes buffered but not yet consumed (a nonzero value at EOF means
  /// the peer died mid-frame — report kTruncatedFrame).
  std::size_t pending_bytes() const { return buffer_.size() - offset_; }

 private:
  DecodeStatus Fail(WireError code, const std::string& message);

  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;
  WireError error_ = WireError::kNone;
  std::string error_message_;
};

}  // namespace rcbr::net
