// The deterministic in-process impairment proxy.
//
// Chaos testing a daemon usually means nondeterministic packet mangling
// — which makes "same seed, same session log" impossible to assert.
// This proxy gets determinism back by construction. It sits between
// rcbr_client and rcbrd on loopback, decodes every frame, and decides
// each frame's fate with *tick arithmetic on the frame's own slot
// stamp* plus a stateless per-(seed, direction, seq) hash:
//
//  * loss bursts (FaultKind::kRmLossBurst) drop control frames whose
//    hash falls under the loss probability in force at their slot —
//    independent of poll interleaving, socket buffering, or scheduling;
//  * delay bursts follow the in-process lossy channel's "lost-late"
//    semantics: a one-way delay spike larger than the client's response
//    deadline is indistinguishable from loss (the client has already
//    declared the attempt dead and rescinded), so the proxy drops the
//    frame instead of sleeping — no wall-clock race;
//  * link-down windows drop every frame of either direction whose slot
//    falls inside the window;
//  * controller crashes fire when the first client->server frame
//    reaches the crash tick: the proxy invokes the crash hook (which
//    wipes the server and blocks until the wipe is observable via
//    crash_generation), then severs every proxied connection.
//
// The result: wall-clock deadlines in client and server only *detect*
// outcomes this proxy already decided deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/recorder.h"
#include "sim/fault/wall_timeline.h"

namespace rcbr::net {

struct ProxyOptions {
  std::uint16_t listen_port = 0;  // 0 = ephemeral
  std::string server_host = "127.0.0.1";
  std::uint16_t server_port = 0;
  /// The fault schedule, sim seconds; compiled to the slot domain via
  /// slots_per_second (= 1 / the client's slot_seconds).
  sim::fault::FaultPlan plan;
  double slots_per_second = 100;
  /// One-way delays above this are lost-late and dropped (mirror of the
  /// client's response deadline).
  double late_threshold_s = 0.25;
  std::uint64_t seed = 1;
  /// Invoked when a controller-crash tick is reached. Must leave the
  /// server observably wiped before returning (InjectCrash + wait on
  /// crash_generation) — the proxy drops all connections right after.
  std::function<void()> on_controller_crash;
  int poll_interval_ms = 5;
  obs::Recorder* recorder = nullptr;
};

struct ProxyStats {
  std::int64_t pairs_opened = 0;
  std::int64_t frames_forwarded = 0;
  std::int64_t dropped_loss = 0;
  std::int64_t dropped_late = 0;
  std::int64_t dropped_down = 0;
  std::int64_t crashes_fired = 0;
  std::int64_t decode_failures = 0;
};

class Proxy {
 public:
  explicit Proxy(const ProxyOptions& options);
  ~Proxy();

  /// Binds the listen port. False when unavailable.
  bool Start();
  std::uint16_t port() const { return listener_.port(); }

  /// Runs the forwarding loop until Stop(). Call from its own thread.
  void Serve();
  void Stop() { stop_.store(true, std::memory_order_release); }

  const ProxyStats& stats() const { return stats_; }

 private:
  struct Pair;

  /// Drains one side of a pair, applying the impairment schedule to
  /// every decoded frame.
  void PumpSide(Pair& pair, bool from_client);
  /// True = forward, false = drop (stats say why).
  bool LetThrough(const Frame& frame, bool from_client);
  void FireCrashesUpTo(std::int64_t slot);

  ProxyOptions options_;
  sim::fault::WallClockSchedule schedule_;
  TcpListener listener_;
  std::vector<std::unique_ptr<Pair>> pairs_;
  std::int64_t crash_watermark_ = -1;
  bool sever_all_ = false;
  ProxyStats stats_;
  std::atomic<bool> stop_{false};
};

}  // namespace rcbr::net
