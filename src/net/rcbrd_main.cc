// rcbrd — the RCBR admission daemon on loopback TCP.
//
//   rcbrd [--port N] [--capacity-bps X] [--tolerance-bps X]
//         [--client-deadline-ms N] [--drain-at-slot N]
//
// Runs PortController admission behind the length-prefixed frame
// protocol (src/net/wire.h). SIGTERM or SIGINT starts a graceful drain:
// no new sessions, rate increases denied, every session gets a Drain
// notice and finishes with Bye/ByeAck; the daemon exits when the last
// session is gone. A second signal stops immediately.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/server.h"

namespace {

rcbr::net::Server* g_server = nullptr;
volatile std::sig_atomic_t g_signals = 0;

void HandleSignal(int) {
  // Both entry points are lock-free atomic stores — signal-safe.
  if (g_server == nullptr) return;
  g_signals = g_signals + 1;
  if (g_signals == 1) {
    g_server->RequestDrain();
  } else {
    g_server->Stop();
  }
}

double ParseDouble(const char* text) { return std::strtod(text, nullptr); }

}  // namespace

int main(int argc, char** argv) {
  rcbr::net::ServerOptions options;
  options.port = 4790;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--port") == 0 && value != nullptr) {
      options.port = static_cast<std::uint16_t>(std::atoi(value));
      ++i;
    } else if (std::strcmp(arg, "--capacity-bps") == 0 && value != nullptr) {
      options.capacity_bps = ParseDouble(value);
      ++i;
    } else if (std::strcmp(arg, "--tolerance-bps") == 0 && value != nullptr) {
      options.admission_tolerance_bps = ParseDouble(value);
      ++i;
    } else if (std::strcmp(arg, "--client-deadline-ms") == 0 &&
               value != nullptr) {
      options.client_deadline_ms = std::atoi(value);
      ++i;
    } else if (std::strcmp(arg, "--drain-at-slot") == 0 && value != nullptr) {
      options.drain_at_slot = std::atoll(value);
      ++i;
    } else {
      std::fprintf(stderr, "rcbrd: unknown argument %s\n", arg);
      return 2;
    }
  }

  rcbr::net::Server server(options);
  if (!server.Start()) {
    std::fprintf(stderr, "rcbrd: cannot bind 127.0.0.1:%u\n",
                 static_cast<unsigned>(options.port));
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("rcbrd: listening on 127.0.0.1:%u capacity %.0f bps\n",
              static_cast<unsigned>(server.port()), options.capacity_bps);
  std::fflush(stdout);
  server.Serve();

  const rcbr::net::ServerStats& stats = server.stats();
  std::printf(
      "rcbrd: exit sessions=%lld admits=%lld grants=%lld denies=%lld "
      "resyncs=%lld crashes=%lld drains=%lld protocol_errors=%lld\n",
      static_cast<long long>(stats.sessions_opened),
      static_cast<long long>(stats.admits),
      static_cast<long long>(stats.grants),
      static_cast<long long>(stats.denies),
      static_cast<long long>(stats.resyncs),
      static_cast<long long>(stats.crashes),
      static_cast<long long>(stats.drains_notified),
      static_cast<long long>(stats.protocol_errors));
  return 0;
}
