#include "net/client.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.h"

namespace rcbr::net {

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

Client::Client(const ClientOptions& options)
    : options_(options),
      traffic_rng_(DeriveStreamSeed(options.seed, 0)),
      backoff_rng_(DeriveStreamSeed(options.seed, 1)),
      controller_(
          std::make_unique<core::OnlineRateController>(options.heuristic)),
      queue_(options.buffer_bits, options.recorder, options.vci) {
  Require(options.slot_seconds > 0 && options.slot_seconds <= 1.0,
          "Client: slot_seconds must be in (0, 1]");
  Require(options.slots > 0, "Client: session needs at least one slot");
  Require(options.heuristic.initial_rate_bits_per_slot > 0,
          "Client: initial rate must be positive");
  Require(options.chunk_bytes > 0 &&
              options.chunk_bytes + kPayloadHeaderBytes + 4 <=
                  kMaxPayloadBytes,
          "Client: chunk_bytes must fit one frame");
  Require(options.heartbeat_every_slots > 0,
          "Client: heartbeat period must be positive");
  next_heartbeat_slot_ = options_.heartbeat_every_slots;
  next_upgrade_slot_ = options_.upgrade_every_slots;
}

Client::~Client() = default;

double Client::NextArrivalBits() {
  if (scene_remaining_ <= 0) {
    scene_burst_ = !scene_burst_;
    // Geometric dwell with the configured mean: the slow time scale.
    scene_remaining_ = 1 + static_cast<std::int64_t>(traffic_rng_.Exponential(
                               std::max(1.0, options_.traffic.scene_mean_slots)));
  }
  --scene_remaining_;
  const double mean = scene_burst_ ? options_.traffic.burst_bits_per_slot
                                   : options_.traffic.quiet_bits_per_slot;
  const double sigma = options_.traffic.sigma_log;
  const double factor =
      sigma > 0 ? traffic_rng_.Lognormal(-0.5 * sigma * sigma, sigma) : 1.0;
  return mean * factor;
}

std::int64_t Client::SlotsFor(double seconds) const {
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(seconds / options_.slot_seconds)));
}

void Client::ChargeSlots(std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const double arrivals = NextArrivalBits();
    stats_.arrived_bits += arrivals;
    // The slot clock keeps running while the source is stuck signaling:
    // arrivals pile into the buffer and nothing drains, so outages show
    // up as real loss. The controller sees the stall too, keeping its
    // buffer model honest, but its proposals are ignored mid-charge.
    stats_.lost_bits += queue_.Step(arrivals, 0);
    controller_->Step(arrivals, 0);
    ++slot_;
    ++stats_.charged_slots;
  }
}

bool Client::SendFrame(Frame frame) {
  frame.seq = next_seq_out_++;
  const std::vector<std::uint8_t> bytes = Encode(frame);
  if (!stream_.SendAll(bytes.data(), bytes.size())) {
    connected_ = false;
    return false;
  }
  return true;
}

bool Client::HandleAsyncFrame(const Frame& frame) {
  if (saw_seq_in_ && frame.seq <= last_seq_in_) {
    log_.Append(slot_, SessionEventKind::kProtocolError, frame.seq,
                granted_bps_, rung_, "stale_sequence");
    connected_ = false;
    return false;
  }
  saw_seq_in_ = true;
  last_seq_in_ = frame.seq;
  switch (frame.type) {
    case FrameType::kDataAck:
      stats_.acked_bytes =
          static_cast<std::int64_t>(frame.total_bytes);
      return true;
    case FrameType::kDrain:
      if (!drain_requested_) {
        drain_requested_ = true;
        ++stats_.drain_notices;
        log_.Append(slot_, SessionEventKind::kDrain, frame.seq, granted_bps_,
                    rung_);
        obs::Count(options_.recorder, "net.client.drain_notices");
      }
      return true;
    case FrameType::kError:
      log_.Append(slot_, SessionEventKind::kProtocolError, frame.seq,
                  granted_bps_, rung_,
                  WireErrorName(static_cast<WireError>(frame.error_code)));
      obs::Count(options_.recorder, "net.client.protocol_errors");
      connected_ = false;
      return false;
    default:
      // A response frame outside any transaction: a grant/deny that
      // arrived after its deadline. The rescind already nullified it.
      ++stats_.stale_responses;
      return true;
  }
}

bool Client::PollIncoming() {
  std::uint8_t buf[4096];
  for (;;) {
    const RecvResult r = stream_.RecvSome(buf, sizeof(buf), 0);
    if (r.status == RecvStatus::kTimeout) break;  // nothing buffered
    if (r.status != RecvStatus::kData) {
      connected_ = false;
      return false;
    }
    decoder_.Feed(buf, r.bytes);
  }
  Frame frame;
  for (;;) {
    const DecodeStatus status = decoder_.Next(frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (status == DecodeStatus::kError) {
      log_.Append(slot_, SessionEventKind::kProtocolError, 0, granted_bps_,
                  rung_, decoder_.error_message());
      connected_ = false;
      return false;
    }
    if (!HandleAsyncFrame(frame)) return false;
  }
}

Client::TxStatus Client::AwaitResponse(FrameType expect,
                                       std::uint32_t expect_slot,
                                       Frame* out) {
  // Deadline over the whole wait, not per read.
  int remaining_ms = options_.response_deadline_ms;
  std::uint8_t buf[4096];
  for (;;) {
    Frame frame;
    for (;;) {
      const DecodeStatus status = decoder_.Next(frame);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kError) {
        log_.Append(slot_, SessionEventKind::kProtocolError, 0, granted_bps_,
                    rung_, decoder_.error_message());
        connected_ = false;
        return TxStatus::kConnLost;
      }
      // A kDeny is the other legitimate answer to a delta — definitive,
      // never retried — so an expected kGrant matches either verdict.
      const bool matches =
          frame.slot == expect_slot &&
          (frame.type == expect ||
           (expect == FrameType::kGrant && frame.type == FrameType::kDeny));
      if (matches) {
        if (saw_seq_in_ && frame.seq <= last_seq_in_) {
          log_.Append(slot_, SessionEventKind::kProtocolError, frame.seq,
                      granted_bps_, rung_, "stale_sequence");
          connected_ = false;
          return TxStatus::kConnLost;
        }
        saw_seq_in_ = true;
        last_seq_in_ = frame.seq;
        *out = frame;
        return TxStatus::kOk;
      }
      if (!HandleAsyncFrame(frame)) return TxStatus::kConnLost;
    }
    if (remaining_ms <= 0) return TxStatus::kTimedOut;
    const RecvResult r = stream_.RecvSome(buf, sizeof(buf), remaining_ms);
    if (r.status == RecvStatus::kTimeout) return TxStatus::kTimedOut;
    if (r.status != RecvStatus::kData) {
      connected_ = false;
      return TxStatus::kConnLost;
    }
    decoder_.Feed(buf, r.bytes);
    // Coarse budget decay: each successful read spends at least a
    // millisecond of the window, so a peer trickling garbage cannot pin
    // us here forever.
    remaining_ms -= 1;
  }
}

Client::TxStatus Client::Transaction(Frame request, FrameType expect,
                                     Frame* response) {
  for (std::int64_t attempt = 0;; ++attempt) {
    request.slot = static_cast<std::uint32_t>(slot_);
    if (!SendFrame(request)) return TxStatus::kConnLost;
    const TxStatus status = AwaitResponse(expect, request.slot, response);
    if (status != TxStatus::kTimedOut) return status;

    ++stats_.timeouts;
    obs::Count(options_.recorder, "net.client.timeouts");
    log_.Append(slot_, SessionEventKind::kTimeout, request.seq, granted_bps_,
                rung_, std::string(FrameTypeName(request.type)) +
                           " attempt=" + std::to_string(attempt + 1));
    ChargeSlots(SlotsFor(options_.retry.timeout_s));
    if (attempt >= options_.retry.max_retries) return TxStatus::kTimedOut;

    // Rescind before retransmitting, exactly like the in-process
    // renegotiator: an absolute resync at the acknowledged rate and rung
    // erases whatever the lost attempt may have half-applied. Only then
    // is a retransmit safe against double-application.
    if (request.type != FrameType::kResync) {
      Frame rescind;
      rescind.type = FrameType::kResync;
      rescind.rate_bps = granted_bps_;
      rescind.rung = rung_;
      rescind.slot = static_cast<std::uint32_t>(slot_);
      if (!SendFrame(rescind)) return TxStatus::kConnLost;
      Frame echo;
      const TxStatus rs = AwaitResponse(FrameType::kGrant, rescind.slot, &echo);
      if (rs != TxStatus::kOk) {
        // The reliable repair itself failed: the link is suspect.
        connected_ = false;
        return TxStatus::kConnLost;
      }
      ++stats_.resyncs;
      obs::Count(options_.recorder, "net.client.resyncs");
    }
    ChargeSlots(SlotsFor(
        signaling::BackoffSeconds(options_.retry, attempt, &backoff_rng_)));
  }
}

bool Client::DialAndHello(bool resync) {
  auto stream = TcpStream::Connect(options_.host, options_.port,
                                   options_.connect_timeout_ms);
  if (!stream) return false;
  stream_ = std::move(*stream);
  decoder_ = FrameDecoder{};
  next_seq_out_ = 1;
  saw_seq_in_ = false;
  last_seq_in_ = 0;
  connected_ = true;
  if (!resync) return true;

  Frame hello;
  hello.type = FrameType::kHello;
  hello.vci = options_.vci;
  hello.rate_bps = granted_bps_;
  hello.rung = rung_;
  hello.resync = true;
  hello.slot_us =
      static_cast<std::uint32_t>(options_.slot_seconds * 1e6 + 0.5);
  hello.slot = static_cast<std::uint32_t>(slot_);
  if (!SendFrame(hello)) return false;
  Frame welcome;
  if (AwaitResponse(FrameType::kWelcome, hello.slot, &welcome) !=
          TxStatus::kOk ||
      !welcome.accepted) {
    stream_.Close();
    connected_ = false;
    return false;
  }
  return true;
}

bool Client::ConnectSession() {
  full_ask_bps_ = options_.heuristic.initial_rate_bits_per_slot /
                  options_.slot_seconds;
  const std::size_t depth =
      options_.ladder.empty() ? 1 : options_.ladder.depth();
  for (std::int64_t attempt = 0; attempt <= options_.max_reconnects;
       ++attempt) {
    if (attempt > 0) {
      ++stats_.reconnect_attempts;
      ChargeSlots(SlotsFor(signaling::BackoffSeconds(
          options_.retry, attempt - 1, &backoff_rng_)));
    }
    if (!DialAndHello(/*resync=*/false)) {
      log_.Append(slot_, SessionEventKind::kReconnectFailed, 0, 0, 0,
                  "dial attempt=" + std::to_string(attempt + 1));
      continue;
    }
    // Walk the ladder best rung first on this connection, like
    // RcbrSource::Connect: admission either grants some rung or blocks.
    bool dead = false;
    for (std::size_t r = 0; r < depth; ++r) {
      const double want = options_.ladder.empty()
                              ? full_ask_bps_
                              : options_.ladder.RateAt(r, full_ask_bps_);
      Frame hello;
      hello.type = FrameType::kHello;
      hello.vci = options_.vci;
      hello.rate_bps = want;
      hello.rung = static_cast<std::uint32_t>(r);
      hello.slot_us =
          static_cast<std::uint32_t>(options_.slot_seconds * 1e6 + 0.5);
      hello.slot = static_cast<std::uint32_t>(slot_);
      if (!SendFrame(hello)) {
        dead = true;
        break;
      }
      Frame welcome;
      const TxStatus status =
          AwaitResponse(FrameType::kWelcome, hello.slot, &welcome);
      if (status != TxStatus::kOk) {
        dead = true;
        break;
      }
      if (welcome.accepted) {
        granted_bps_ = welcome.rate_bps;
        rung_ = welcome.rung;
        log_.Append(slot_, SessionEventKind::kConnect, welcome.seq,
                    granted_bps_, rung_);
        obs::Count(options_.recorder, "net.client.connects");
        if (rung_ > 0) {
          controller_->OnRateImposed(granted_bits_per_slot());
        }
        return true;
      }
      log_.Append(slot_, SessionEventKind::kConnectDenied, welcome.seq, want,
                  static_cast<std::uint32_t>(r));
    }
    if (!dead) {
      // The server answered every rung with a denial: admission is
      // blocked, and hammering it with re-dials will not change that.
      stream_.Close();
      connected_ = false;
      log_.Append(slot_, SessionEventKind::kGiveUp, 0, 0, 0,
                  "admission_blocked");
      stats_.gave_up = true;
      return false;
    }
    stream_.Close();
    connected_ = false;
  }
  log_.Append(slot_, SessionEventKind::kGiveUp, 0, 0, 0, "connect_budget");
  stats_.gave_up = true;
  return false;
}

void Client::VerifyServerState() {
  Frame query;
  query.type = FrameType::kStateQuery;
  Frame report;
  if (Transaction(query, FrameType::kStateReport, &report) != TxStatus::kOk) {
    return;  // audit is best-effort; a dead link surfaces elsewhere
  }
  // The whole point of the absolute-rate resync: after any crash and
  // repair, both ends hold bit-identical contract state.
  if (!report.known || !SameBits(report.rate_bps, granted_bps_) ||
      report.rung != rung_) {
    ++stats_.desyncs;
    log_.Append(slot_, SessionEventKind::kDesync, report.seq, report.rate_bps,
                report.rung,
                report.known ? "state_mismatch" : "unknown_vci");
    obs::Count(options_.recorder, "net.client.desyncs");
  }
}

bool Client::Reconnect() {
  log_.Append(slot_, SessionEventKind::kLinkSuspect, 0, granted_bps_, rung_);
  obs::Count(options_.recorder, "net.client.link_suspect");
  stream_.Close();
  connected_ = false;
  for (std::int64_t attempt = 0; attempt < options_.max_reconnects;
       ++attempt) {
    ++stats_.reconnect_attempts;
    ChargeSlots(SlotsFor(
        signaling::BackoffSeconds(options_.retry, attempt, &backoff_rng_)));
    if (!DialAndHello(/*resync=*/true)) {
      log_.Append(slot_, SessionEventKind::kReconnectFailed, 0, granted_bps_,
                  rung_, "attempt=" + std::to_string(attempt + 1));
      // A refused dial burns the response deadline too before the next
      // backoff — charge it on the sim axis.
      ChargeSlots(SlotsFor(options_.retry.timeout_s));
      continue;
    }
    ++stats_.reconnects;
    ++stats_.resyncs;
    log_.Append(slot_, SessionEventKind::kReconnect, 0, granted_bps_, rung_,
                "attempt=" + std::to_string(attempt + 1));
    log_.Append(slot_, SessionEventKind::kResync, 0, granted_bps_, rung_);
    obs::Count(options_.recorder, "net.client.reconnects");
    // The resync repaired the server from our acknowledged state; the
    // audit proves it (and the chaos gate requires it to stay silent).
    VerifyServerState();
    if (!connected_) continue;  // audit killed the link; try again
    controller_->OnRateImposed(granted_bits_per_slot());
    carry_bits_ = 0;
    return true;
  }
  log_.Append(slot_, SessionEventKind::kGiveUp, 0, granted_bps_, rung_,
              "reconnect_budget");
  stats_.gave_up = true;
  return false;
}

void Client::TryUpgrade() {
  for (std::uint32_t target = 0; target < rung_; ++target) {
    const double want = options_.ladder.RateAt(target, full_ask_bps_);
    Frame request;
    request.type = FrameType::kDelta;
    request.delta_bps = want - granted_bps_;
    // The probe carries the target rung; Transaction's timeout rescind
    // carries the *current* rung_ — the acked-rung discipline, so an
    // abandoned probe cannot deregister the call from the upgrade queue.
    request.rung = target;
    Frame response;
    const TxStatus status =
        Transaction(request, FrameType::kGrant, &response);
    if (status == TxStatus::kOk && response.type == FrameType::kGrant) {
      granted_bps_ = response.rate_bps;
      rung_ = target;
      ++stats_.upgrades;
      log_.Append(slot_, SessionEventKind::kUpgrade, response.seq,
                  granted_bps_, rung_);
      obs::Count(options_.recorder, "net.client.upgrades");
      controller_->OnRateImposed(granted_bits_per_slot());
      return;
    }
    if (status == TxStatus::kOk) continue;  // denied: probe the next rung
    if (status == TxStatus::kConnLost) {
      Reconnect();
      return;
    }
    return;  // timeout: try again at the next probe period
  }
}

void Client::Shutdown() {
  if (!connected_) return;
  Frame bye;
  bye.type = FrameType::kBye;
  Frame ack;
  if (Transaction(bye, FrameType::kByeAck, &ack) == TxStatus::kOk) {
    stats_.completed = true;
    log_.Append(slot_, SessionEventKind::kBye, ack.seq, granted_bps_, rung_);
    obs::Count(options_.recorder, "net.client.byes");
  }
  stream_.Close();
  connected_ = false;
  session_done_ = true;
}

bool Client::StepSlot() {
  const double arrivals = NextArrivalBits();
  stats_.arrived_bits += arrivals;
  const double before = queue_.occupancy_bits();
  const double lost = queue_.Step(arrivals, granted_bits_per_slot());
  stats_.lost_bits += lost;
  const double drained = before + arrivals - lost - queue_.occupancy_bits();

  // Ship the drained bits as slot-stamped chunks; whole bytes only, the
  // fractional remainder carries to the next slot.
  carry_bits_ += drained;
  std::int64_t nbytes = static_cast<std::int64_t>(carry_bits_ / 8.0);
  carry_bits_ -= static_cast<double>(nbytes) * 8.0;
  while (nbytes > 0 && connected_) {
    const std::size_t chunk = static_cast<std::size_t>(std::min<std::int64_t>(
        nbytes, static_cast<std::int64_t>(options_.chunk_bytes)));
    Frame data;
    data.type = FrameType::kData;
    data.slot = static_cast<std::uint32_t>(slot_);
    data.data.assign(chunk, static_cast<std::uint8_t>(slot_ & 0xff));
    if (!SendFrame(data)) break;
    ++stats_.data_frames;
    stats_.sent_bytes += static_cast<std::int64_t>(chunk);
    nbytes -= static_cast<std::int64_t>(chunk);
  }
  obs::Count(options_.recorder, "net.client.slots");

  if (connected_ && !PollIncoming() && !session_done_) {
    if (!Reconnect()) return false;
  }
  if (!connected_ && !Reconnect()) return false;

  const std::optional<double> proposal =
      controller_->Step(arrivals, granted_bits_per_slot());
  if (proposal.has_value() && !drain_requested_) {
    // The ladder scales the heuristic's ask by the current rung, the
    // same contract RcbrSource applies.
    full_ask_bps_ = *proposal / options_.slot_seconds;
    const double want_bps =
        options_.ladder.empty()
            ? full_ask_bps_
            : options_.ladder.RateAt(rung_, full_ask_bps_);
    if (!SameBits(want_bps, granted_bps_)) {
      Frame request;
      request.type = FrameType::kDelta;
      request.delta_bps = want_bps - granted_bps_;
      request.rung = rung_;
      Frame response;
      const TxStatus status =
          Transaction(request, FrameType::kGrant, &response);
      if (status == TxStatus::kOk && response.type == FrameType::kGrant) {
        granted_bps_ = response.rate_bps;
        ++stats_.grants;
        log_.Append(slot_, SessionEventKind::kGrant, response.seq,
                    granted_bps_, rung_);
        obs::Count(options_.recorder, "net.client.grants");
      } else if (status == TxStatus::kOk) {  // kDeny: definitive answer
        ++stats_.denies;
        log_.Append(slot_, SessionEventKind::kDeny, response.seq,
                    response.rate_bps, response.rung);
        obs::Count(options_.recorder, "net.client.denies");
        controller_->OnRequestDenied(granted_bits_per_slot());
      } else if (status == TxStatus::kTimedOut) {
        // Budget spent, link standing: hold the last grant (the paper's
        // "keep whatever bandwidth it already has").
        ++stats_.holds;
        log_.Append(slot_, SessionEventKind::kHold, 0, granted_bps_, rung_);
        controller_->OnRequestDenied(granted_bits_per_slot());
      } else {
        if (!Reconnect()) return false;
      }
    }
  }

  if (slot_ >= next_heartbeat_slot_ && connected_) {
    while (next_heartbeat_slot_ <= slot_) {
      next_heartbeat_slot_ += options_.heartbeat_every_slots;
    }
    Frame hb;
    hb.type = FrameType::kHeartbeat;
    Frame ack;
    const TxStatus status = Transaction(hb, FrameType::kHeartbeatAck, &ack);
    if (status == TxStatus::kOk) {
      ++stats_.heartbeats;
    } else if (!Reconnect()) {
      return false;
    }
  }

  if (options_.upgrade_every_slots > 0 && !options_.ladder.empty() &&
      rung_ > 0 && !drain_requested_ && connected_ &&
      slot_ >= next_upgrade_slot_) {
    while (next_upgrade_slot_ <= slot_) {
      next_upgrade_slot_ += options_.upgrade_every_slots;
    }
    TryUpgrade();
    if (stats_.gave_up) return false;
  }

  if (drain_requested_ && queue_.occupancy_bits() < 8.0 &&
      carry_bits_ < 8.0) {
    Shutdown();
    return false;
  }

  ++slot_;
  ++stats_.slots;
  return slot_ < options_.slots;
}

bool Client::Run() {
  if (!ConnectSession()) return false;
  while (StepSlot()) {
  }
  if (stats_.gave_up) return false;
  if (!session_done_) {
    // End of the configured session: close out with a final audit, so
    // the run-ending invariant (byte-exact agreement) is on the record.
    if (connected_) VerifyServerState();
    Shutdown();
  }
  return stats_.completed;
}

}  // namespace rcbr::net
