// rcbr_client — the RCBR end system talking to a running rcbrd.
//
//   rcbr_client --port N [--host H] [--slots N] [--seed N] [--vci N]
//               [--slot-ms N] [--ladder-depth N] [--upgrade-every N]
//               [--session-out FILE] [--jsonl]
//
// Drives the seeded multi-time-scale source + AR(1) heuristic + rate
// ladder against a live daemon and prints the session outcome. Exit
// status 0 iff the session completed with an acknowledged Bye and zero
// desyncs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/client.h"

namespace {

rcbr::sim::RateLadder MakeLadder(int depth) {
  if (depth <= 1) return rcbr::sim::RateLadder::Scalar();
  std::vector<rcbr::sim::RateRung> rungs;
  double scale = 1.0;
  for (int r = 0; r < depth; ++r) {
    rungs.push_back({scale, scale});
    scale *= 0.5;
  }
  return rcbr::sim::RateLadder(std::move(rungs));
}

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  rcbr::net::ClientOptions options;
  options.heuristic.initial_rate_bits_per_slot = 32e3;
  options.heuristic.granularity_bits_per_slot = 4e3;
  options.heuristic.max_rate_bits_per_slot = 96e3;
  options.heuristic.denial_cooldown_slots = 8;
  int ladder_depth = 3;
  std::string session_out;
  bool print_jsonl = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--host") == 0 && value != nullptr) {
      options.host = value;
      ++i;
    } else if (std::strcmp(arg, "--port") == 0 && value != nullptr) {
      options.port = static_cast<std::uint16_t>(std::atoi(value));
      ++i;
    } else if (std::strcmp(arg, "--vci") == 0 && value != nullptr) {
      options.vci = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--slots") == 0 && value != nullptr) {
      options.slots = std::atoll(value);
      ++i;
    } else if (std::strcmp(arg, "--seed") == 0 && value != nullptr) {
      options.seed = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--slot-ms") == 0 && value != nullptr) {
      options.slot_seconds = std::atoi(value) * 1e-3;
      ++i;
    } else if (std::strcmp(arg, "--ladder-depth") == 0 && value != nullptr) {
      ladder_depth = std::atoi(value);
      ++i;
    } else if (std::strcmp(arg, "--upgrade-every") == 0 && value != nullptr) {
      options.upgrade_every_slots = std::atoll(value);
      ++i;
    } else if (std::strcmp(arg, "--session-out") == 0 && value != nullptr) {
      session_out = value;
      ++i;
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      print_jsonl = true;
    } else {
      std::fprintf(stderr, "rcbr_client: unknown argument %s\n", arg);
      return 2;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "rcbr_client: --port is required\n");
    return 2;
  }
  options.ladder = MakeLadder(ladder_depth);

  rcbr::net::Client client(options);
  const bool ok = client.Run();
  const rcbr::net::ClientStats& stats = client.stats();

  if (print_jsonl) {
    std::fputs(client.log().ToJsonl().c_str(), stdout);
  }
  if (!session_out.empty() &&
      !WriteText(session_out, client.log().CanonicalText())) {
    std::fprintf(stderr, "rcbr_client: cannot write %s\n",
                 session_out.c_str());
    return 1;
  }

  std::printf(
      "rcbr_client: %s slots=%lld charged=%lld grants=%lld denies=%lld "
      "timeouts=%lld holds=%lld reconnects=%lld resyncs=%lld desyncs=%lld "
      "upgrades=%lld loss=%.4f final_rate=%.0f rung=%u\n",
      ok ? "completed" : (stats.gave_up ? "gave-up" : "failed"),
      static_cast<long long>(stats.slots),
      static_cast<long long>(stats.charged_slots),
      static_cast<long long>(stats.grants),
      static_cast<long long>(stats.denies),
      static_cast<long long>(stats.timeouts),
      static_cast<long long>(stats.holds),
      static_cast<long long>(stats.reconnects),
      static_cast<long long>(stats.resyncs),
      static_cast<long long>(stats.desyncs),
      static_cast<long long>(stats.upgrades), stats.loss_fraction(),
      client.granted_bps(), client.rung());
  return ok && stats.desyncs == 0 ? 0 : 1;
}
