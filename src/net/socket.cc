#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rcbr::net {

namespace {

bool PollOnce(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpStream::TcpStream(int fd) : fd_(fd) {
  if (fd_ >= 0) SetNoDelay(fd_);
}

TcpStream::~TcpStream() { Close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpStream::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpStream> TcpStream::Connect(const std::string& host,
                                            std::uint16_t port,
                                            int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return std::nullopt;
  }
  // Non-blocking connect so the handshake honors the deadline.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return std::nullopt;
  }
  if (rc != 0) {
    if (!PollOnce(fd, POLLOUT, timeout_ms)) {
      ::close(fd);
      return std::nullopt;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; I/O uses poll deadlines
  return TcpStream(fd);
}

bool TcpStream::SendAll(const void* bytes, std::size_t n) {
  if (fd_ < 0) return false;
  const auto* p = static_cast<const std::uint8_t*>(bytes);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc =
        ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EINTR)) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!PollOnce(fd_, POLLOUT, 1000)) return false;
      continue;
    }
    return false;
  }
  return true;
}

RecvResult TcpStream::RecvSome(void* bytes, std::size_t n, int timeout_ms) {
  if (fd_ < 0) return {RecvStatus::kError, 0};
  if (timeout_ms != 0 && !PollOnce(fd_, POLLIN, timeout_ms)) {
    return {RecvStatus::kTimeout, 0};
  }
  for (;;) {
    const ssize_t rc = ::recv(fd_, bytes, n, timeout_ms == 0 ? MSG_DONTWAIT : 0);
    if (rc > 0) return {RecvStatus::kData, static_cast<std::size_t>(rc)};
    if (rc == 0) return {RecvStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {RecvStatus::kTimeout, 0};
    }
    return {RecvStatus::kError, 0};
  }
}

bool TcpStream::Readable(int timeout_ms) {
  if (fd_ < 0) return false;
  return PollOnce(fd_, POLLIN, timeout_ms);
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpListener> TcpListener::Bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

std::optional<TcpStream> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  if (!PollOnce(fd_, POLLIN, timeout_ms)) return std::nullopt;
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) return TcpStream(conn);
    if (errno != EINTR) return std::nullopt;
  }
}

}  // namespace rcbr::net
