// The canonical session event log.
//
// The daemon's chaos acceptance criterion is "the same seed yields the
// same session event log across runs". This log is that artifact: an
// ordered record of every *state-changing* protocol event a client
// session goes through — connects, welcomes, grants, denials, timeouts,
// reconnects, resyncs, drain, close — with the protocol values (rate
// bits, rung, logical slot) and none of the wall-clock noise
// (heartbeat acks, socket latencies, retry sleeps). Determinism is
// defined over CanonicalText(): the slot-stamped event sequence, where
// every rate is rendered from its exact IEEE-754 bit pattern so
// "byte-exact" means what it says.
//
// SessionLog is independent of src/obs on purpose: the determinism
// check must hold in RCBR_OBS=OFF builds too.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rcbr::net {

enum class SessionEventKind : std::uint8_t {
  kConnect,        // dial + Hello accepted (rate/rung = granted contract)
  kConnectDenied,  // Hello denied at this rung (client walks the ladder)
  kGrant,          // renegotiation granted (rate/rung = new contract)
  kDeny,           // renegotiation explicitly denied
  kTimeout,        // control transaction exhausted its retry budget
  kHold,           // degradation: stopped asking, holding last grant
  kFallback,       // degradation: escalated to the peak-rate fallback
  kRecover,        // degradation: back to controller-driven rates
  kUpgrade,        // ladder rung promotion granted
  kLinkSuspect,    // consecutive failures crossed the reconnect threshold
  kReconnect,      // re-dial succeeded (before the resync handshake)
  kReconnectFailed,// one re-dial attempt failed (timeout/refused)
  kResync,         // absolute-rate resync accepted after reconnect
  kDesync,         // post-resync state query disagreed with the server
  kDrain,          // server asked for graceful drain
  kBye,            // session completed and acknowledged
  kProtocolError,  // peer sent an invalid frame / error frame
  kGiveUp,         // reconnect budget exhausted; session abandoned
};

const char* SessionEventKindName(SessionEventKind kind);

struct SessionEvent {
  std::int64_t slot = 0;     // client logical slot when the event applied
  SessionEventKind kind = SessionEventKind::kConnect;
  std::uint64_t seq = 0;     // control sequence number (0 when n/a)
  double rate_bps = 0;       // contract rate after the event
  std::uint32_t rung = 0;    // contract rung after the event
  std::string detail;        // free-form (error names, attempt counts)
};

class SessionLog {
 public:
  void Append(const SessionEvent& event) { events_.push_back(event); }
  void Append(std::int64_t slot, SessionEventKind kind, std::uint64_t seq,
              double rate_bps, std::uint32_t rung,
              const std::string& detail = "");

  const std::vector<SessionEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Count of events of one kind.
  std::int64_t Count(SessionEventKind kind) const;

  /// One line per event, deterministic: slot, kind, seq, rung, the rate
  /// as both %.17g and its raw bit pattern, and the detail string. Two
  /// runs with the same seed must produce byte-identical canonical text.
  std::string CanonicalText() const;

  /// JSONL rendering for artifacts (same fields as CanonicalText plus
  /// nothing wall-clock). One object per line.
  std::string ToJsonl() const;

  /// JSON array rendering for embedding as the "session" section of an
  /// obs_metrics-style report blob. `indent` prefixes every line.
  std::string ToJsonArray(const std::string& indent) const;

 private:
  std::vector<SessionEvent> events_;
};

}  // namespace rcbr::net
