#include "net/chaos.h"

#include <chrono>
#include <thread>

#include "util/error.h"
#include "util/json.h"

namespace rcbr::net {

ChaosResult RunChaos(const ChaosOptions& options) {
  ChaosResult result;

  ServerOptions server_options = options.server;
  server_options.port = 0;
  Server server(server_options);
  Require(server.Start(), "RunChaos: server failed to bind");
  std::thread server_thread([&server] { server.Serve(); });

  ProxyOptions proxy_options;
  proxy_options.listen_port = 0;
  proxy_options.server_port = server.port();
  proxy_options.plan = options.plan;
  proxy_options.slots_per_second = 1.0 / options.client.slot_seconds;
  proxy_options.late_threshold_s = options.client.response_deadline_ms * 1e-3;
  proxy_options.seed = options.proxy_seed;
  proxy_options.recorder = options.client.recorder;
  proxy_options.on_controller_crash = [&server] {
    // The handshake that makes a crash a completed fact: request the
    // wipe, then wait until the serve loop has demonstrably done it.
    const std::uint64_t generation = server.crash_generation();
    server.InjectCrash();
    while (server.crash_generation() == generation) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Proxy proxy(proxy_options);
  Require(proxy.Start(), "RunChaos: proxy failed to bind");
  std::thread proxy_thread([&proxy] { proxy.Serve(); });

  ClientOptions client_options = options.client;
  client_options.host = "127.0.0.1";
  client_options.port = proxy.port();
  Client client(client_options);
  client.Run();

  proxy.Stop();
  proxy_thread.join();
  server.Stop();
  server_thread.join();

  result.client = client.stats();
  result.server = server.stats();
  result.proxy = proxy.stats();
  result.completed = client.stats().completed;
  result.gave_up = client.stats().gave_up;
  result.desyncs = client.stats().desyncs;
  result.crash_generations = server.crash_generation();
  result.session_canonical = client.log().CanonicalText();
  result.session_jsonl = client.log().ToJsonl();
  result.final_rate_bps = client.granted_bps();
  result.final_rung = client.rung();
  result.server_utilization_bps = server.utilization_bps();
  return result;
}

std::string ChaosReportJson(const ChaosOptions& options,
                            const ChaosResult& result) {
  // Rebuild the session array from the JSONL lines so the report embeds
  // the exact events the determinism check compares.
  std::string session = "[";
  {
    bool first = true;
    std::size_t start = 0;
    const std::string& jsonl = result.session_jsonl;
    while (start < jsonl.size()) {
      std::size_t end = jsonl.find('\n', start);
      if (end == std::string::npos) end = jsonl.size();
      if (end > start) {
        session += first ? "\n    " : ",\n    ";
        session += jsonl.substr(start, end - start);
        first = false;
      }
      start = end + 1;
    }
    session += first ? "]" : "\n  ]";
  }

  std::string out = "{\n";
  out += "  \"experiment\": " + json::Quote(options.name) + ",\n";
  out += "  \"base_seed\": " + std::to_string(options.client.seed) + ",\n";
  out += "  \"notes\": [" +
         json::Quote("loopback chaos run: client -> impairment proxy -> "
                     "rcbrd on 127.0.0.1") +
         "],\n";
  out += "  \"results\": {\n";
  out += "    \"passed\": " + std::string(result.Passed() ? "true" : "false") +
         ",\n";
  out += "    \"completed\": " +
         std::string(result.completed ? "true" : "false") + ",\n";
  out += "    \"gave_up\": " + std::string(result.gave_up ? "true" : "false") +
         ",\n";
  out += "    \"desyncs\": " + std::to_string(result.desyncs) + ",\n";
  out += "    \"crashes\": " + std::to_string(result.crash_generations) +
         ",\n";
  out += "    \"reconnects\": " + std::to_string(result.client.reconnects) +
         ",\n";
  out += "    \"resyncs\": " + std::to_string(result.client.resyncs) + ",\n";
  out += "    \"timeouts\": " + std::to_string(result.client.timeouts) + ",\n";
  out += "    \"grants\": " + std::to_string(result.client.grants) + ",\n";
  out += "    \"denies\": " + std::to_string(result.client.denies) + ",\n";
  out += "    \"upgrades\": " + std::to_string(result.client.upgrades) + ",\n";
  out += "    \"drain_notices\": " +
         std::to_string(result.client.drain_notices) + ",\n";
  out += "    \"slots\": " + std::to_string(result.client.slots) + ",\n";
  out += "    \"charged_slots\": " +
         std::to_string(result.client.charged_slots) + ",\n";
  out += "    \"arrived_bits\": " + json::Number(result.client.arrived_bits) +
         ",\n";
  out += "    \"lost_bits\": " + json::Number(result.client.lost_bits) + ",\n";
  out += "    \"loss_fraction\": " +
         json::Number(result.client.loss_fraction()) + ",\n";
  out += "    \"sent_bytes\": " + std::to_string(result.client.sent_bytes) +
         ",\n";
  out += "    \"server_data_bytes\": " +
         std::to_string(result.server.data_bytes) + ",\n";
  out += "    \"proxy_dropped_loss\": " +
         std::to_string(result.proxy.dropped_loss) + ",\n";
  out += "    \"proxy_dropped_down\": " +
         std::to_string(result.proxy.dropped_down) + ",\n";
  out += "    \"proxy_dropped_late\": " +
         std::to_string(result.proxy.dropped_late) + ",\n";
  out += "    \"final_rate_bps\": " + json::Number(result.final_rate_bps) +
         ",\n";
  out += "    \"final_rung\": " + std::to_string(result.final_rung) + "\n";
  out += "  },\n";
  out += "  \"session\": " + session;
  if (options.client.recorder != nullptr) {
    const obs::MetricsSnapshot snapshot =
        options.client.recorder->metrics().Snapshot();
    if (!snapshot.empty()) {
      out += ",\n  \"obs_metrics\": " + snapshot.ToJson("  ");
    }
  }
  out += "\n}\n";
  return out;
}

}  // namespace rcbr::net
