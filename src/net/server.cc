#include "net/server.h"

#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cmath>

namespace rcbr::net {

namespace {

std::int64_t MonotonicMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 +
         ts.tv_nsec / 1000000;
}

}  // namespace

struct Server::Connection {
  TcpStream stream;
  FrameDecoder decoder;
  bool dead = false;

  // Session state (established by a successful Hello).
  bool admitted = false;
  std::uint64_t vci = 0;
  double granted_bps = 0;
  std::uint32_t rung = 0;
  double slot_seconds = 1e-3;  // from Hello's slot_us

  // Per-direction sequence validation and stamping.
  bool saw_seq = false;
  std::uint64_t last_seq_in = 0;
  std::uint64_t next_seq_out = 1;

  // Slot-stamped token-bucket metering of received data. Credit accrues
  // from the client's own slot clock, so the verdict is a pure function
  // of the frame stream: wall-clock jitter cannot flip it.
  bool meter_started = false;
  std::uint32_t meter_slot = 0;
  double meter_credit_bits = 0;
  std::uint64_t total_data_bytes = 0;

  bool drain_sent = false;
  std::int64_t last_activity_ms = 0;
};

Server::Server(const ServerOptions& options)
    : options_(options),
      port_controller_(options.capacity_bps, /*track_connections=*/true,
                       options.recorder, options.admission_tolerance_bps) {}

Server::~Server() = default;

bool Server::Start() {
  auto listener = TcpListener::Bind(options_.port);
  if (!listener) return false;
  listener_ = std::move(*listener);
  return true;
}

double Server::TrackedRate(std::uint64_t vci) const {
  return port_controller_.TrackedRate(vci);
}

bool Server::IsUpgradeWaiter(std::uint64_t vci) const {
  return port_controller_.IsUpgradeWaiter(vci);
}

double Server::utilization_bps() const {
  return port_controller_.utilization_bps();
}

void Server::CrashNow() {
  port_controller_.CrashRestart();
  for (auto& conn : connections_) conn->stream.Close();
  connections_.clear();
  ++stats_.crashes;
  obs::Count(options_.recorder, "net.server.crashes");
  crash_generation_.fetch_add(1, std::memory_order_acq_rel);
}

Frame Server::Reply(Connection& conn, FrameType type,
                    const Frame& request) const {
  Frame f;
  f.type = type;
  f.slot = request.slot;  // responses echo the request's logical slot
  f.seq = conn.next_seq_out;
  return f;
}

void Server::MaybePiggybackDrain(Connection& conn,
                                 std::vector<Frame>& frames) {
  if (!draining() || conn.drain_sent) return;
  Frame drain;
  drain.type = FrameType::kDrain;
  drain.slot = frames.empty() ? 0 : frames.front().slot;
  conn.drain_sent = true;
  ++stats_.drains_notified;
  obs::Count(options_.recorder, "net.server.drains_notified");
  frames.insert(frames.begin(), drain);
}

bool Server::SendFrames(Connection& conn, const std::vector<Frame>& frames) {
  std::vector<std::uint8_t> bytes;
  for (Frame f : frames) {
    f.seq = conn.next_seq_out++;
    EncodeFrame(f, bytes);
  }
  if (!conn.stream.SendAll(bytes.data(), bytes.size())) {
    conn.dead = true;
    return false;
  }
  return true;
}

void Server::ProtocolError(Connection& conn, WireError code) {
  ++stats_.protocol_errors;
  obs::Count(options_.recorder, "net.server.protocol_errors");
  Frame err;
  err.type = FrameType::kError;
  err.error_code = static_cast<std::uint32_t>(code);
  SendFrames(conn, {err});  // best effort: the peer may already be gone
  conn.dead = true;
}

bool Server::HandleHello(Connection& conn, const Frame& frame) {
  if (conn.admitted) {
    ProtocolError(conn, WireError::kBadHandshake);
    return false;
  }
  if (frame.vci == 0 || frame.rate_bps <= 0 || frame.slot_us == 0) {
    ProtocolError(conn, WireError::kBadHandshake);
    return false;
  }
  const double slot_seconds = frame.slot_us * 1e-6;
  const double now = frame.slot * slot_seconds;

  bool accepted = false;
  if (frame.resync) {
    // Reconnect repair: the absolute-rate resync never fails. It fixes
    // the aggregate utilization with the tracked-rate difference (zero
    // after a crash wiped the table) and re-registers the upgrade
    // waiter when rung > 0 — the same cell-borne crash consistency the
    // in-process controller provides.
    port_controller_.Handle(
        signaling::RmCell::Resync(frame.vci, frame.rate_bps, frame.rung),
        now);
    ++stats_.resyncs;
    obs::Count(options_.recorder, "net.server.resyncs");
    accepted = true;
  } else {
    if (draining()) {
      ProtocolError(conn, WireError::kServerDraining);
      return false;
    }
    accepted = port_controller_.AdmitConnection(frame.vci, frame.rate_bps,
                                                frame.rung);
    ++(accepted ? stats_.admits : stats_.admit_denies);
    obs::Count(options_.recorder,
               accepted ? "net.server.admits" : "net.server.admit_denies");
  }

  std::vector<Frame> out;
  Frame welcome = Reply(conn, FrameType::kWelcome, frame);
  welcome.accepted = accepted;
  if (accepted) {
    conn.admitted = true;
    conn.vci = frame.vci;
    conn.granted_bps = frame.rate_bps;
    conn.rung = frame.rung;
    conn.slot_seconds = slot_seconds;
    conn.meter_started = false;
    conn.meter_credit_bits = 0;
    welcome.rate_bps = conn.granted_bps;
    welcome.rung = conn.rung;
  }
  MaybePiggybackDrain(conn, out);
  out.push_back(welcome);
  return SendFrames(conn, out);
  // A denied Hello leaves the connection open: the client walks its
  // rate ladder down and retries on the same stream.
}

bool Server::HandleFrame(Connection& conn, const Frame& frame) {
  ++stats_.frames_in;
  conn.last_activity_ms = MonotonicMs();
  if (options_.drain_at_slot >= 0 && !draining() &&
      static_cast<std::int64_t>(frame.slot) >= options_.drain_at_slot) {
    RequestDrain();
  }

  // Duplicate or stale sequence numbers are replays — protocol error.
  if (conn.saw_seq && frame.seq <= conn.last_seq_in) {
    ProtocolError(conn, WireError::kStaleSequence);
    return false;
  }
  conn.saw_seq = true;
  conn.last_seq_in = frame.seq;

  if (frame.type == FrameType::kHello) return HandleHello(conn, frame);
  if (!conn.admitted) {
    ProtocolError(conn, WireError::kNotAdmitted);
    return false;
  }

  const double now = frame.slot * conn.slot_seconds;
  std::vector<Frame> out;
  switch (frame.type) {
    case FrameType::kDelta: {
      // Draining servers refuse growth but still honor decreases, so
      // sessions can wind down to a clean Bye.
      if (draining() && frame.delta_bps > 0) {
        Frame deny = Reply(conn, FrameType::kDeny, frame);
        deny.rate_bps = conn.granted_bps;
        deny.rung = conn.rung;
        deny.error_code =
            static_cast<std::uint32_t>(WireError::kServerDraining);
        ++stats_.denies;
        MaybePiggybackDrain(conn, out);
        out.push_back(deny);
        break;
      }
      const auto verdict = port_controller_.Handle(
          signaling::RmCell::Delta(conn.vci, frame.delta_bps, frame.rung),
          now);
      if (verdict.accepted) {
        conn.granted_bps += frame.delta_bps;
        conn.rung = frame.rung;
        Frame grant = Reply(conn, FrameType::kGrant, frame);
        grant.rate_bps = conn.granted_bps;
        grant.rung = conn.rung;
        ++stats_.grants;
        obs::Count(options_.recorder, "net.server.grants");
        MaybePiggybackDrain(conn, out);
        out.push_back(grant);
      } else {
        Frame deny = Reply(conn, FrameType::kDeny, frame);
        deny.rate_bps = conn.granted_bps;
        deny.rung = conn.rung;
        ++stats_.denies;
        obs::Count(options_.recorder, "net.server.denies");
        MaybePiggybackDrain(conn, out);
        out.push_back(deny);
      }
      break;
    }
    case FrameType::kResync: {
      port_controller_.Handle(
          signaling::RmCell::Resync(conn.vci, frame.rate_bps, frame.rung),
          now);
      conn.granted_bps = frame.rate_bps;
      conn.rung = frame.rung;
      ++stats_.resyncs;
      obs::Count(options_.recorder, "net.server.resyncs");
      Frame grant = Reply(conn, FrameType::kGrant, frame);
      grant.rate_bps = conn.granted_bps;
      grant.rung = conn.rung;
      MaybePiggybackDrain(conn, out);
      out.push_back(grant);
      break;
    }
    case FrameType::kHeartbeat: {
      ++stats_.heartbeats;
      MaybePiggybackDrain(conn, out);
      out.push_back(Reply(conn, FrameType::kHeartbeatAck, frame));
      break;
    }
    case FrameType::kData: {
      // Meter against the granted rate on the client's slot clock.
      if (!conn.meter_started) {
        conn.meter_started = true;
        conn.meter_slot = frame.slot;
      }
      const double elapsed_slots =
          static_cast<double>(frame.slot - conn.meter_slot);
      conn.meter_slot = frame.slot;
      const double per_slot_bits = conn.granted_bps * conn.slot_seconds;
      const double burst_bits =
          options_.meter_tolerance_slots * per_slot_bits + 8.0 * 1500;
      conn.meter_credit_bits = std::min(
          burst_bits, conn.meter_credit_bits + elapsed_slots * per_slot_bits);
      conn.meter_credit_bits -= 8.0 * static_cast<double>(frame.data.size());
      if (conn.meter_credit_bits < -burst_bits) {
        ++stats_.rate_violations;
        obs::Count(options_.recorder, "net.server.rate_violations");
        ProtocolError(conn, WireError::kRateViolation);
        return false;
      }
      conn.total_data_bytes += frame.data.size();
      ++stats_.data_frames;
      stats_.data_bytes += static_cast<std::int64_t>(frame.data.size());
      obs::Count(options_.recorder, "net.server.data_bytes",
                 static_cast<std::int64_t>(frame.data.size()));
      Frame ack = Reply(conn, FrameType::kDataAck, frame);
      ack.total_bytes = conn.total_data_bytes;
      out.push_back(ack);  // never piggyback on the data path
      break;
    }
    case FrameType::kStateQuery: {
      Frame report = Reply(conn, FrameType::kStateReport, frame);
      report.rate_bps = port_controller_.TrackedRate(conn.vci);
      report.rung = conn.rung;
      report.known = report.rate_bps != 0 ||
                     port_controller_.IsUpgradeWaiter(conn.vci);
      MaybePiggybackDrain(conn, out);
      out.push_back(report);
      break;
    }
    case FrameType::kBye: {
      port_controller_.ReleaseConnection(conn.vci);
      conn.admitted = false;
      ++stats_.byes;
      obs::Count(options_.recorder, "net.server.byes");
      SendFrames(conn, {Reply(conn, FrameType::kByeAck, frame)});
      conn.dead = true;  // orderly close after the ack
      return false;
    }
    default:
      // Client-direction-only or unexpected frames (Welcome, Grant,
      // Drain, ...) arriving at the server are protocol errors.
      ProtocolError(conn, WireError::kUnknownType);
      return false;
  }
  return SendFrames(conn, out);
}

void Server::HandleReadable(Connection& conn) {
  std::uint8_t buf[4096];
  const RecvResult r = conn.stream.RecvSome(buf, sizeof(buf), 0);
  if (r.status == RecvStatus::kClosed || r.status == RecvStatus::kError) {
    if (r.status == RecvStatus::kClosed && conn.decoder.pending_bytes() > 0) {
      // EOF mid-frame: the peer died between bytes of a frame.
      ++stats_.protocol_errors;
      obs::Count(options_.recorder, "net.server.protocol_errors");
    }
    conn.dead = true;
    return;
  }
  if (r.status != RecvStatus::kData) return;
  conn.decoder.Feed(buf, r.bytes);
  Frame frame;
  for (;;) {
    const DecodeStatus status = conn.decoder.Next(frame);
    if (status == DecodeStatus::kNeedMore) break;
    if (status == DecodeStatus::kError) {
      ProtocolError(conn, conn.decoder.error());
      return;
    }
    if (!HandleFrame(conn, frame)) return;
    if (conn.dead) return;
  }
}

void Server::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    if (crash_pending_.exchange(false, std::memory_order_acq_rel)) {
      CrashNow();
    }

    std::vector<pollfd> pfds;
    pfds.reserve(connections_.size() + 1);
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : connections_) {
      pfds.push_back({conn->stream.fd(), POLLIN, 0});
    }
    const int rc =
        ::poll(pfds.data(), pfds.size(), options_.poll_interval_ms);
    if (rc < 0 && errno != EINTR) break;

    if (rc > 0 && (pfds[0].revents & POLLIN) != 0 && !draining()) {
      while (auto stream = listener_.Accept(0)) {
        auto conn = std::make_unique<Connection>();
        conn->stream = std::move(*stream);
        conn->last_activity_ms = MonotonicMs();
        connections_.push_back(std::move(conn));
        ++stats_.sessions_opened;
        obs::Count(options_.recorder, "net.server.sessions_opened");
        pfds.push_back({});  // keep sizes consistent; served next tick
      }
    }

    const std::int64_t now_ms = MonotonicMs();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      Connection& conn = *connections_[i];
      const short revents = i + 1 < pfds.size() ? pfds[i + 1].revents : 0;
      if (!conn.dead && (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        HandleReadable(conn);
      }
      if (!conn.dead &&
          now_ms - conn.last_activity_ms > options_.client_deadline_ms) {
        // Failure detector: a silent peer is gone. Its reservation is
        // deliberately kept — the tracked rate is what makes the
        // absolute-rate resync on reconnect exact.
        conn.dead = true;
        ++stats_.deadline_closes;
        obs::Count(options_.recorder, "net.server.deadline_closes");
      }
    }
    const auto new_end = std::remove_if(
        connections_.begin(), connections_.end(),
        [this](const std::unique_ptr<Connection>& c) {
          if (c->dead) {
            ++stats_.sessions_closed;
            obs::Count(options_.recorder, "net.server.sessions_closed");
          }
          return c->dead;
        });
    connections_.erase(new_end, connections_.end());

    // Draining with no sessions left: the daemon's work is done.
    if (draining() && connections_.empty()) break;
  }
  connections_.clear();
}

}  // namespace rcbr::net
