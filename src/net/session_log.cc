#include "net/session_log.h"

#include <cstdio>
#include <cstring>

#include "util/json.h"

namespace rcbr::net {

namespace {

/// `rate` as its raw IEEE-754 bit pattern in hex — the byte-exactness
/// axis of the determinism check (%.17g alone can hide a ulp).
std::string RateBits(double rate) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &rate, sizeof(bits));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

std::string EventJson(const SessionEvent& e) {
  std::string out = "{\"slot\": " + std::to_string(e.slot) +
                    ", \"kind\": " +
                    json::Quote(SessionEventKindName(e.kind)) +
                    ", \"seq\": " + std::to_string(e.seq) +
                    ", \"rate_bps\": " + json::Number(e.rate_bps) +
                    ", \"rate_bits\": \"" + RateBits(e.rate_bps) +
                    "\", \"rung\": " + std::to_string(e.rung);
  if (!e.detail.empty()) out += ", \"detail\": " + json::Quote(e.detail);
  out += "}";
  return out;
}

}  // namespace

const char* SessionEventKindName(SessionEventKind kind) {
  switch (kind) {
    case SessionEventKind::kConnect: return "connect";
    case SessionEventKind::kConnectDenied: return "connect_denied";
    case SessionEventKind::kGrant: return "grant";
    case SessionEventKind::kDeny: return "deny";
    case SessionEventKind::kTimeout: return "timeout";
    case SessionEventKind::kHold: return "hold";
    case SessionEventKind::kFallback: return "fallback";
    case SessionEventKind::kRecover: return "recover";
    case SessionEventKind::kUpgrade: return "upgrade";
    case SessionEventKind::kLinkSuspect: return "link_suspect";
    case SessionEventKind::kReconnect: return "reconnect";
    case SessionEventKind::kReconnectFailed: return "reconnect_failed";
    case SessionEventKind::kResync: return "resync";
    case SessionEventKind::kDesync: return "desync";
    case SessionEventKind::kDrain: return "drain";
    case SessionEventKind::kBye: return "bye";
    case SessionEventKind::kProtocolError: return "protocol_error";
    case SessionEventKind::kGiveUp: return "give_up";
  }
  return "unknown";
}

void SessionLog::Append(std::int64_t slot, SessionEventKind kind,
                        std::uint64_t seq, double rate_bps,
                        std::uint32_t rung, const std::string& detail) {
  events_.push_back(SessionEvent{slot, kind, seq, rate_bps, rung, detail});
}

std::int64_t SessionLog::Count(SessionEventKind kind) const {
  std::int64_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string SessionLog::CanonicalText() const {
  std::string out;
  for (const auto& e : events_) {
    out += std::to_string(e.slot);
    out += ' ';
    out += SessionEventKindName(e.kind);
    out += " seq=";
    out += std::to_string(e.seq);
    out += " rate=";
    out += json::Number(e.rate_bps);
    out += " bits=";
    out += RateBits(e.rate_bps);
    out += " rung=";
    out += std::to_string(e.rung);
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

std::string SessionLog::ToJsonl() const {
  std::string out;
  for (const auto& e : events_) {
    out += EventJson(e);
    out += '\n';
  }
  return out;
}

std::string SessionLog::ToJsonArray(const std::string& indent) const {
  std::string out = "[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += indent + "  " + EventJson(events_[i]);
  }
  if (!events_.empty()) out += "\n" + indent;
  out += "]";
  return out;
}

}  // namespace rcbr::net
