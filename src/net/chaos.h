// The loopback chaos harness: one deterministic daemon run.
//
// RunChaos wires the three processes-worth of machinery into one
// process: an rcbrd Server on its own thread, the impairment Proxy on
// another, and the Client inline — client -> proxy -> server over
// 127.0.0.1 with kernel-assigned ports. The proxy's crash hook performs
// the InjectCrash + crash_generation handshake, so "the server crashed"
// is a completed fact (state wiped, connections severed) before any
// reconnect can race it.
//
// The run's acceptance invariants are computed here:
//  * zero desyncs — every post-crash resync left client and server in
//    byte-exact agreement on rate bits and rung (audited over the wire
//    with StateQuery);
//  * clean completion — the session ended in an acknowledged Bye, even
//    when a drain_at_slot SIGTERM stand-in interrupted it;
//  * determinism — the canonical session log is a pure function of the
//    seeds, checkable by running twice and comparing bytes.
//
// ChaosReportJson renders the run in the repo's BENCH_* shape (results
// + "session" array + obs_metrics) for tools/rcbr_report.py.
#pragma once

#include <cstdint>
#include <string>

#include "net/client.h"
#include "net/proxy.h"
#include "net/server.h"
#include "sim/fault/fault_plan.h"

namespace rcbr::net {

struct ChaosOptions {
  /// Client config; host/port are overwritten to point at the proxy.
  ClientOptions client;
  /// Server config; port is overwritten to 0 (ephemeral).
  ServerOptions server;
  /// Fault schedule in sim seconds (slot domain = client.slot_seconds).
  sim::fault::FaultPlan plan;
  /// Seed for the proxy's stateless drop hashes.
  std::uint64_t proxy_seed = 7;
  /// Descriptive name stamped into the report.
  std::string name = "rcbr_chaos";
};

struct ChaosResult {
  bool completed = false;  // Bye acknowledged
  bool gave_up = false;
  std::int64_t desyncs = 0;
  std::uint64_t crash_generations = 0;
  ClientStats client;
  ServerStats server;
  ProxyStats proxy;
  std::string session_canonical;  // determinism-comparison text
  std::string session_jsonl;
  double final_rate_bps = 0;
  std::uint32_t final_rung = 0;
  /// Aggregate reservation left on the port after the session — 0 when
  /// the Bye actually released it.
  double server_utilization_bps = 0;

  /// The chaos gate: finished cleanly, survived every scheduled crash,
  /// and never once disagreed with the server about the contract.
  bool Passed() const {
    return completed && !gave_up && desyncs == 0;
  }
};

/// Runs one seeded chaos session. Blocks until the session is over and
/// both helper threads have joined.
ChaosResult RunChaos(const ChaosOptions& options);

/// The run as a BENCH-shaped JSON document (results, session array, and
/// the recorder's obs_metrics when one was attached to the client).
std::string ChaosReportJson(const ChaosOptions& options,
                            const ChaosResult& result);

}  // namespace rcbr::net
