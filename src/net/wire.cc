#include "net/wire.h"

#include <cmath>
#include <cstring>

#include "util/error.h"

namespace rcbr::net {

namespace {

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

void PutF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Sequential reader over one frame's body with bounds accounting.
class Reader {
 public:
  Reader(const std::uint8_t* p, std::size_t n) : p_(p), n_(n) {}

  bool U8(std::uint8_t& v) {
    if (i_ + 1 > n_) return false;
    v = p_[i_++];
    return true;
  }
  bool U32(std::uint32_t& v) {
    if (i_ + 4 > n_) return false;
    v = static_cast<std::uint32_t>(p_[i_]) |
        static_cast<std::uint32_t>(p_[i_ + 1]) << 8 |
        static_cast<std::uint32_t>(p_[i_ + 2]) << 16 |
        static_cast<std::uint32_t>(p_[i_ + 3]) << 24;
    i_ += 4;
    return true;
  }
  bool U64(std::uint64_t& v) {
    std::uint32_t lo = 0, hi = 0;
    if (!U32(lo) || !U32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) |
        static_cast<std::uint64_t>(hi) << 32;
    return true;
  }
  bool F64(double& v) {
    std::uint64_t bits = 0;
    if (!U64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool Bytes(std::vector<std::uint8_t>& out, std::size_t count) {
    if (i_ + count > n_) return false;
    out.assign(p_ + i_, p_ + i_ + count);
    i_ += count;
    return true;
  }
  std::size_t remaining() const { return n_ - i_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t i_ = 0;
};

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kWelcome: return "welcome";
    case FrameType::kDelta: return "delta";
    case FrameType::kResync: return "resync";
    case FrameType::kGrant: return "grant";
    case FrameType::kDeny: return "deny";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kHeartbeatAck: return "heartbeat_ack";
    case FrameType::kData: return "data";
    case FrameType::kDataAck: return "data_ack";
    case FrameType::kDrain: return "drain";
    case FrameType::kBye: return "bye";
    case FrameType::kByeAck: return "bye_ack";
    case FrameType::kError: return "error";
    case FrameType::kStateQuery: return "state_query";
    case FrameType::kStateReport: return "state_report";
  }
  return "unknown";
}

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kNone: return "none";
    case WireError::kOversizedFrame: return "oversized_frame";
    case WireError::kTruncatedFrame: return "truncated_frame";
    case WireError::kUnknownType: return "unknown_type";
    case WireError::kTrailingBytes: return "trailing_bytes";
    case WireError::kNonFiniteRate: return "non_finite_rate";
    case WireError::kStaleSequence: return "stale_sequence";
    case WireError::kBadHandshake: return "bad_handshake";
    case WireError::kNotAdmitted: return "not_admitted";
    case WireError::kRateViolation: return "rate_violation";
    case WireError::kServerDraining: return "server_draining";
  }
  return "unknown";
}

void EncodeFrame(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  PutU32(out, 0);  // patched below
  PutU8(out, static_cast<std::uint8_t>(frame.type));
  PutU32(out, frame.slot);
  PutU64(out, frame.seq);
  switch (frame.type) {
    case FrameType::kHello:
      PutU64(out, frame.vci);
      PutF64(out, frame.rate_bps);
      PutU32(out, frame.rung);
      PutU8(out, frame.resync ? 1 : 0);
      PutU32(out, frame.slot_us);
      break;
    case FrameType::kWelcome:
      PutU8(out, frame.accepted ? 1 : 0);
      PutF64(out, frame.rate_bps);
      PutU32(out, frame.rung);
      break;
    case FrameType::kDelta:
      PutF64(out, frame.delta_bps);
      PutU32(out, frame.rung);
      break;
    case FrameType::kResync:
    case FrameType::kGrant:
    case FrameType::kDeny:
      PutF64(out, frame.rate_bps);
      PutU32(out, frame.rung);
      break;
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck:
    case FrameType::kDrain:
    case FrameType::kBye:
    case FrameType::kByeAck:
    case FrameType::kStateQuery:
      break;
    case FrameType::kData:
      Require(frame.data.size() + kPayloadHeaderBytes + 4 <= kMaxPayloadBytes,
              "EncodeFrame: data chunk exceeds the frame ceiling");
      PutU32(out, static_cast<std::uint32_t>(frame.data.size()));
      out.insert(out.end(), frame.data.begin(), frame.data.end());
      break;
    case FrameType::kDataAck:
      PutU64(out, frame.total_bytes);
      break;
    case FrameType::kError:
      PutU32(out, frame.error_code);
      break;
    case FrameType::kStateReport:
      PutF64(out, frame.rate_bps);
      PutU32(out, frame.rung);
      PutU8(out, frame.known ? 1 : 0);
      break;
  }
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - start - 4);
  out[start] = static_cast<std::uint8_t>(payload_len);
  out[start + 1] = static_cast<std::uint8_t>(payload_len >> 8);
  out[start + 2] = static_cast<std::uint8_t>(payload_len >> 16);
  out[start + 3] = static_cast<std::uint8_t>(payload_len >> 24);
}

std::vector<std::uint8_t> Encode(const Frame& frame) {
  std::vector<std::uint8_t> out;
  EncodeFrame(frame, out);
  return out;
}

void FrameDecoder::Feed(const std::uint8_t* bytes, std::size_t n) {
  if (error_ != WireError::kNone) return;  // poisoned: drop input
  // Compact once consumed bytes dominate, so the buffer stays bounded.
  if (offset_ > 0 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes, bytes + n);
}

DecodeStatus FrameDecoder::Fail(WireError code, const std::string& message) {
  error_ = code;
  error_message_ = message;
  buffer_.clear();
  offset_ = 0;
  return DecodeStatus::kError;
}

DecodeStatus FrameDecoder::Next(Frame& out) {
  if (error_ != WireError::kNone) return DecodeStatus::kError;
  const std::size_t avail = buffer_.size() - offset_;
  if (avail < 4) return DecodeStatus::kNeedMore;
  const std::uint8_t* p = buffer_.data() + offset_;
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(p[0]) |
      static_cast<std::uint32_t>(p[1]) << 8 |
      static_cast<std::uint32_t>(p[2]) << 16 |
      static_cast<std::uint32_t>(p[3]) << 24;
  if (payload_len > kMaxPayloadBytes) {
    return Fail(WireError::kOversizedFrame,
                "length prefix " + std::to_string(payload_len) +
                    " exceeds the ceiling of " +
                    std::to_string(kMaxPayloadBytes));
  }
  if (payload_len < kPayloadHeaderBytes) {
    return Fail(WireError::kTruncatedFrame,
                "payload of " + std::to_string(payload_len) +
                    " bytes cannot hold the frame header");
  }
  if (avail < 4u + payload_len) return DecodeStatus::kNeedMore;

  Reader r(p + 4, payload_len);
  out = Frame{};
  std::uint8_t type_byte = 0;
  r.U8(type_byte);
  r.U32(out.slot);
  r.U64(out.seq);
  const FrameType type = static_cast<FrameType>(type_byte);
  out.type = type;

  bool ok = true;
  bool check_rate = false;
  std::uint8_t flag = 0;
  switch (type) {
    case FrameType::kHello:
      ok = r.U64(out.vci) && r.F64(out.rate_bps) && r.U32(out.rung) &&
           r.U8(flag) && r.U32(out.slot_us);
      out.resync = flag != 0;
      check_rate = true;
      break;
    case FrameType::kWelcome:
      ok = r.U8(flag) && r.F64(out.rate_bps) && r.U32(out.rung);
      out.accepted = flag != 0;
      check_rate = true;
      break;
    case FrameType::kDelta:
      ok = r.F64(out.delta_bps) && r.U32(out.rung);
      if (ok && !std::isfinite(out.delta_bps)) {
        return Fail(WireError::kNonFiniteRate,
                    "delta frame carries a non-finite rate difference");
      }
      break;
    case FrameType::kResync:
    case FrameType::kGrant:
    case FrameType::kDeny:
      ok = r.F64(out.rate_bps) && r.U32(out.rung);
      check_rate = true;
      break;
    case FrameType::kHeartbeat:
    case FrameType::kHeartbeatAck:
    case FrameType::kDrain:
    case FrameType::kBye:
    case FrameType::kByeAck:
    case FrameType::kStateQuery:
      break;
    case FrameType::kData: {
      std::uint32_t n = 0;
      ok = r.U32(n) && n == r.remaining() && r.Bytes(out.data, n);
      break;
    }
    case FrameType::kDataAck:
      ok = r.U64(out.total_bytes);
      break;
    case FrameType::kError:
      ok = r.U32(out.error_code);
      break;
    case FrameType::kStateReport:
      ok = r.F64(out.rate_bps) && r.U32(out.rung) && r.U8(flag);
      out.known = flag != 0;
      check_rate = true;
      break;
    default:
      return Fail(WireError::kUnknownType,
                  "unknown frame type " + std::to_string(type_byte));
  }
  if (!ok) {
    return Fail(WireError::kTruncatedFrame,
                std::string("body of ") + FrameTypeName(type) +
                    " frame is shorter than its fixed layout");
  }
  if (r.remaining() != 0) {
    return Fail(WireError::kTrailingBytes,
                std::string(FrameTypeName(type)) + " frame carries " +
                    std::to_string(r.remaining()) + " trailing bytes");
  }
  if (check_rate && !std::isfinite(out.rate_bps)) {
    return Fail(WireError::kNonFiniteRate,
                std::string(FrameTypeName(type)) +
                    " frame carries a non-finite rate");
  }
  offset_ += 4u + payload_len;
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  }
  return DecodeStatus::kFrame;
}

}  // namespace rcbr::net
