// rcbr_chaos — the seeded loopback chaos drill, one process.
//
//   rcbr_chaos [--seed N] [--proxy-seed N] [--slots N] [--crashes N]
//              [--no-drain] [--json-out FILE] [--session-out FILE]
//              [--print-session]
//
// Client -> impairment proxy -> rcbrd server on 127.0.0.1, with a fault
// schedule that includes an RM-loss burst, a delay spike past the
// response deadline, a link-down window, at least one controller
// crash/restart, and a mid-session drain (the SIGTERM stand-in). Exit
// status 0 iff the run passed: session completed with an acknowledged
// Bye, reconnects stayed inside the retry budget, and every post-crash
// StateQuery audit found the client and server byte-exact on rate and
// rung. The canonical session log written by --session-out is a pure
// function of the seeds: CI runs this binary twice and byte-compares.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/chaos.h"
#include "obs/recorder.h"

namespace {

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  using rcbr::sim::fault::FaultEvent;
  using rcbr::sim::fault::FaultKind;

  rcbr::net::ChaosOptions options;
  options.client.seed = 42;
  options.client.slots = 400;
  options.client.slot_seconds = 0.01;
  options.client.ladder = rcbr::sim::RateLadder::FromScales(
      {1.0, 0.5, 0.25}, {1.0, 0.5, 0.25});
  options.client.upgrade_every_slots = 64;
  options.client.heuristic.initial_rate_bits_per_slot = 32e3;
  options.client.heuristic.granularity_bits_per_slot = 4e3;
  options.client.heuristic.max_rate_bits_per_slot = 96e3;
  options.client.heuristic.denial_cooldown_slots = 8;
  options.client.retry.timeout_s = 0.06;
  options.client.retry.max_retries = 3;
  options.server.capacity_bps = 10e6;

  int crashes = 1;
  bool drain = true;
  std::string json_out;
  std::string session_out;
  bool print_session = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--seed") == 0 && value != nullptr) {
      options.client.seed = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--proxy-seed") == 0 && value != nullptr) {
      options.proxy_seed = static_cast<std::uint64_t>(std::atoll(value));
      ++i;
    } else if (std::strcmp(arg, "--slots") == 0 && value != nullptr) {
      options.client.slots = std::atoll(value);
      ++i;
    } else if (std::strcmp(arg, "--crashes") == 0 && value != nullptr) {
      crashes = std::atoi(value);
      ++i;
    } else if (std::strcmp(arg, "--no-drain") == 0) {
      drain = false;
    } else if (std::strcmp(arg, "--json-out") == 0 && value != nullptr) {
      json_out = value;
      ++i;
    } else if (std::strcmp(arg, "--session-out") == 0 && value != nullptr) {
      session_out = value;
      ++i;
    } else if (std::strcmp(arg, "--print-session") == 0) {
      print_session = true;
    } else {
      std::fprintf(stderr, "rcbr_chaos: unknown argument %s\n", arg);
      return 2;
    }
  }

  // The fault schedule, in sim seconds on the client's slot clock. The
  // horizon scales with --slots so every act still lands in-session.
  const double horizon_s =
      static_cast<double>(options.client.slots) * options.client.slot_seconds;

  // Act 1: an RM-loss burst — retransmits + rescind resyncs.
  FaultEvent burst;
  burst.time_s = 0.15 * horizon_s;
  burst.kind = FaultKind::kRmLossBurst;
  burst.duration_s = 0.10 * horizon_s;
  burst.loss_probability = 0.35;
  options.plan.Add(burst);

  // Act 2: a delay spike past the response deadline — every control
  // frame in the window is deterministically "lost late".
  FaultEvent spike;
  spike.time_s = 0.32 * horizon_s;
  spike.kind = FaultKind::kRmLossBurst;
  spike.duration_s = 0.03 * horizon_s;
  spike.extra_delay_s = 10.0;  // far beyond any deadline
  options.plan.Add(spike);

  // Act 3: controller crash(es) — reconnect + absolute-rate resync.
  for (int c = 0; c < crashes; ++c) {
    FaultEvent crash;
    crash.time_s = (0.45 + 0.18 * c) * horizon_s;
    crash.kind = FaultKind::kControllerCrash;
    options.plan.Add(crash);
  }

  // Act 4: a link-down window — everything drops, both directions.
  FaultEvent down;
  down.time_s = 0.72 * horizon_s;
  down.kind = FaultKind::kLinkDown;
  options.plan.Add(down);
  FaultEvent up;
  up.time_s = 0.76 * horizon_s;
  up.kind = FaultKind::kLinkUp;
  options.plan.Add(up);

  // Act 5: graceful drain near the end (SIGTERM stand-in): hold the
  // grant, drain the buffer, Bye.
  if (drain) {
    options.server.drain_at_slot =
        static_cast<std::int64_t>(0.9 * static_cast<double>(options.client.slots));
  }

  rcbr::obs::Recorder recorder{rcbr::obs::RecorderOptions{}};
  options.client.recorder = &recorder;

  const rcbr::net::ChaosResult result = rcbr::net::RunChaos(options);

  if (print_session) {
    std::fputs(result.session_canonical.c_str(), stdout);
  }
  if (!session_out.empty() &&
      !WriteText(session_out, result.session_canonical)) {
    std::fprintf(stderr, "rcbr_chaos: cannot write %s\n", session_out.c_str());
    return 1;
  }
  if (!json_out.empty() &&
      !WriteText(json_out, rcbr::net::ChaosReportJson(options, result))) {
    std::fprintf(stderr, "rcbr_chaos: cannot write %s\n", json_out.c_str());
    return 1;
  }

  std::printf(
      "rcbr_chaos: %s crashes=%llu reconnects=%lld resyncs=%lld "
      "desyncs=%lld timeouts=%lld grants=%lld denies=%lld upgrades=%lld "
      "drain_notices=%lld proxy_drops=%lld/%lld/%lld final_rate=%.0f "
      "rung=%u\n",
      result.Passed() ? "PASS" : "FAIL",
      static_cast<unsigned long long>(result.crash_generations),
      static_cast<long long>(result.client.reconnects),
      static_cast<long long>(result.client.resyncs),
      static_cast<long long>(result.desyncs),
      static_cast<long long>(result.client.timeouts),
      static_cast<long long>(result.client.grants),
      static_cast<long long>(result.client.denies),
      static_cast<long long>(result.client.upgrades),
      static_cast<long long>(result.client.drain_notices),
      static_cast<long long>(result.proxy.dropped_loss),
      static_cast<long long>(result.proxy.dropped_down),
      static_cast<long long>(result.proxy.dropped_late),
      result.final_rate_bps, result.final_rung);
  return result.Passed() ? 0 : 1;
}
