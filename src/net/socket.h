// Thin RAII wrappers over loopback TCP sockets.
//
// The daemon's robustness story depends on the unglamorous parts of
// socket programming being right: partial reads and writes, EINTR,
// poll-based deadlines, peers that vanish mid-frame, SIGPIPE on a dead
// peer. This file owns all of it so the protocol layers above never see
// a raw fd. Errors are values (bool / RecvResult), not exceptions: a
// peer crashing is an expected input to the failure model, not a
// contract violation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace rcbr::net {

enum class RecvStatus : std::uint8_t {
  kData,     // >= 1 byte read
  kClosed,   // orderly EOF from the peer
  kTimeout,  // deadline expired with nothing to read
  kError,    // socket error (ECONNRESET and friends)
};

struct RecvResult {
  RecvStatus status = RecvStatus::kError;
  std::size_t bytes = 0;
};

/// A connected TCP stream. Move-only; the destructor closes the fd.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd);
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port, waiting at most `timeout_ms` for the
  /// three-way handshake. nullopt on refusal, timeout, or error.
  static std::optional<TcpStream> Connect(const std::string& host,
                                          std::uint16_t port,
                                          int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all `n` bytes, looping over partial writes and EINTR.
  /// False on any error (the connection is dead; SIGPIPE is suppressed
  /// via MSG_NOSIGNAL).
  bool SendAll(const void* bytes, std::size_t n);

  /// Reads up to `n` bytes, waiting at most `timeout_ms` for the first
  /// byte (0 = only what is already buffered; negative = block forever).
  RecvResult RecvSome(void* bytes, std::size_t n, int timeout_ms);

  /// True when at least one byte is readable without blocking (or the
  /// peer hung up — the next RecvSome reports which).
  bool Readable(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
};

/// A listening socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned; read
  /// the result back with port()). nullopt on any failure.
  static std::optional<TcpListener> Bind(std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Accepts one pending connection, waiting at most `timeout_ms`.
  std::optional<TcpStream> Accept(int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace rcbr::net
