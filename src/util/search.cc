#include "util/search.h"

#include <cmath>

#include "util/error.h"

namespace rcbr {

namespace {

bool Converged(double lo, double hi, const SearchOptions& options) {
  const double width = hi - lo;
  if (width <= options.absolute_tolerance) return true;
  const double mid = std::abs(lo + hi) / 2;
  return width <= options.relative_tolerance * mid;
}

}  // namespace

double MinFeasible(double lo, double hi,
                   const std::function<bool(double)>& feasible,
                   const SearchOptions& options) {
  Require(lo <= hi, "MinFeasible: lo > hi");
  if (feasible(lo)) return lo;
  Require(feasible(hi), "MinFeasible: predicate false at hi");
  // Invariant: feasible(hi), !feasible(lo).
  for (int i = 0; i < options.max_iterations; ++i) {
    if (Converged(lo, hi, options)) break;
    const double mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double Minimize1D(double lo, double hi,
                  const std::function<double(double)>& f,
                  const SearchOptions& options) {
  Require(lo <= hi, "Minimize1D: lo > hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < options.max_iterations; ++i) {
    if (Converged(a, b, options)) break;
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  return a + (b - a) / 2;
}

double Maximize1D(double lo, double hi,
                  const std::function<double(double)>& f,
                  const SearchOptions& options) {
  return Minimize1D(lo, hi, [&f](double x) { return -f(x); }, options);
}

}  // namespace rcbr
