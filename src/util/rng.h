// Seeded random number generation.
//
// All stochastic components of the library draw from an rcbr::Rng so that
// every simulation in the paper reproduction is deterministic given a seed.
// Rng wraps std::mt19937_64 and exposes the distributions the experiments
// need (uniform, exponential, Poisson, normal, lognormal, Pareto,
// categorical) plus substream forking so independent subsystems do not
// share a stream.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace rcbr {

class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean. Requires mean > 0.
  double Exponential(double mean);

  /// Poisson with the given mean. Requires mean >= 0.
  std::int64_t Poisson(double mean);

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma);

  /// Lognormal such that log X ~ N(mu_log, sigma_log^2).
  double Lognormal(double mu_log, double sigma_log);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (support [x_m, inf)).
  double Pareto(double x_m, double alpha);

  /// Bernoulli with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Draws an index i with probability weights[i] / sum(weights).
  /// Requires at least one strictly positive weight.
  std::size_t Categorical(std::span<const double> weights);

  /// Returns a new generator seeded deterministically from this one.
  /// Successive forks produce independent-for-our-purposes substreams.
  Rng Fork();

  /// Returns the generator for stream `stream_index` of the family rooted
  /// at `base_seed` (see DeriveStreamSeed). This is the stateless split
  /// used by the experiment runtime: sweep point i draws from
  /// Rng::Stream(base_seed, i) no matter which thread executes it, so
  /// results are bit-identical for every thread count.
  static Rng Stream(std::uint64_t base_seed, std::uint64_t stream_index);

  /// Underlying engine, for std <random> interoperability.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Derives the seed of stream `stream_index` from `base_seed` by absorbing
/// both through a splitmix64 seed sequence. Distinct indices under one base
/// yield decorrelated, non-overlapping-for-our-purposes mt19937_64 streams
/// (tests/util/rng_test.cc pins golden values; treat the mapping as a
/// stable contract — changing it invalidates every recorded experiment).
std::uint64_t DeriveStreamSeed(std::uint64_t base_seed,
                               std::uint64_t stream_index);

/// Returns a random permutation of {0, ..., n-1}.
std::vector<std::size_t> RandomPermutation(std::size_t n, Rng& rng);

}  // namespace rcbr
