// Root bracketing and monotone binary search.
//
// Several experiments search for the minimum resource satisfying a QoS
// predicate: Fig. 5 finds the minimum drain rate for a buffer size, Fig. 6
// "for each N we do a binary search on c". MinFeasible implements that
// search for a monotone predicate; Minimize1D is a golden-section scalar
// minimizer used by the large-deviations code.
#pragma once

#include <functional>

namespace rcbr {

struct SearchOptions {
  /// Stop when the bracket is narrower than this absolute width...
  double absolute_tolerance = 0.0;
  /// ...or narrower than this fraction of the midpoint (whichever first).
  double relative_tolerance = 1e-3;
  /// Hard cap on bisection steps.
  int max_iterations = 200;
};

/// Returns (approximately) the smallest x in [lo, hi] with feasible(x)
/// true, assuming feasibility is monotone nondecreasing in x. Requires
/// feasible(hi); if feasible(lo), returns lo. The result errs on the
/// feasible side (the returned x satisfies the predicate).
double MinFeasible(double lo, double hi,
                   const std::function<bool(double)>& feasible,
                   const SearchOptions& options = {});

/// Golden-section minimization of a unimodal function on [lo, hi].
/// Returns the approximate minimizer.
double Minimize1D(double lo, double hi,
                  const std::function<double(double)>& f,
                  const SearchOptions& options = {});

/// Maximization counterpart of Minimize1D.
double Maximize1D(double lo, double hi,
                  const std::function<double(double)>& f,
                  const SearchOptions& options = {});

}  // namespace rcbr
