// Discrete histograms over a fixed grid of values.
//
// The admission-control machinery (Sec. VI) describes a call by the
// empirical distribution of its bandwidth levels: "the fraction of time
// p_j that a bandwidth level r_j is needed during the call". Histogram
// stores weighted mass on an explicit value grid and normalizes to a
// probability vector on demand.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rcbr {

/// A weighted histogram over an explicit, strictly increasing value grid.
class Histogram {
 public:
  /// Creates a histogram over `values` (strictly increasing, nonempty).
  explicit Histogram(std::vector<double> values);

  /// Adds `weight` mass at grid index `index`.
  void AddAt(std::size_t index, double weight);

  /// Adds `weight` mass at the grid value nearest to `value`.
  void AddNearest(double value, double weight);

  /// Removes mass previously added (clamps at zero against rounding).
  void RemoveAt(std::size_t index, double weight);

  /// Index of the grid value nearest to `value`.
  std::size_t NearestIndex(double value) const;

  std::size_t size() const { return values_.size(); }
  const std::vector<double>& values() const { return values_; }
  const std::vector<double>& weights() const { return weights_; }
  double total_weight() const { return total_; }

  /// Normalized probability vector; requires total weight > 0.
  std::vector<double> Probabilities() const;

  /// Mean of the distribution; requires total weight > 0.
  double Mean() const;

  /// Largest grid value with positive mass; requires total weight > 0.
  double Peak() const;

  /// Smallest grid value v whose cumulative mass reaches q * total weight
  /// (0 <= q <= 1); requires total weight > 0. Quantile(0) is the smallest
  /// value with positive mass, Quantile(1) equals Peak().
  double Quantile(double q) const;

  /// Resets all mass to zero.
  void Clear();

  /// Merges mass from another histogram defined on the same grid.
  void Merge(const Histogram& other);

  /// Multiplies all weights by `factor` (e.g. exponential aging).
  void Scale(double factor);

 private:
  std::vector<double> values_;
  std::vector<double> weights_;
  double total_ = 0;
};

/// Builds a uniform grid of `count` values from `lo` to `hi` inclusive.
/// Requires count >= 1 and lo <= hi (count >= 2 when lo < hi).
std::vector<double> UniformGrid(double lo, double hi, std::size_t count);

}  // namespace rcbr
