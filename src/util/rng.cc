#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace rcbr {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  Require(lo <= hi, "Rng::Uniform: lo > hi");
  if (lo == hi) return lo;
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  Require(lo <= hi, "Rng::UniformInt: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::Exponential(double mean) {
  Require(mean > 0, "Rng::Exponential: mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::int64_t Rng::Poisson(double mean) {
  Require(mean >= 0, "Rng::Poisson: mean must be nonnegative");
  if (mean == 0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

double Rng::Normal(double mean, double sigma) {
  Require(sigma >= 0, "Rng::Normal: sigma must be nonnegative");
  if (sigma == 0) return mean;
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::Lognormal(double mu_log, double sigma_log) {
  Require(sigma_log >= 0, "Rng::Lognormal: sigma must be nonnegative");
  return std::exp(Normal(mu_log, sigma_log));
}

double Rng::Pareto(double x_m, double alpha) {
  Require(x_m > 0 && alpha > 0, "Rng::Pareto: x_m and alpha must be positive");
  double u = Uniform();
  // Inverse CDF; guard against u == 0 which std::uniform_real can emit.
  u = std::max(u, 1e-300);
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  Require(p >= 0 && p <= 1, "Rng::Bernoulli: p must be in [0,1]");
  return Uniform() < p;
}

std::size_t Rng::Categorical(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    Require(w >= 0, "Rng::Categorical: negative weight");
    total += w;
  }
  Require(total > 0, "Rng::Categorical: all weights zero");
  double u = Uniform() * total;
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

namespace {

// One splitmix64 step: advances `state` and returns the mixed output.
std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng Rng::Fork() {
  // Mix two raw draws through splitmix64 so forked streams are decorrelated
  // from the parent even for adjacent seeds.
  std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= engine_();
  return Rng(z ^ (z >> 31));
}

Rng Rng::Stream(std::uint64_t base_seed, std::uint64_t stream_index) {
  return Rng(DeriveStreamSeed(base_seed, stream_index));
}

std::uint64_t DeriveStreamSeed(std::uint64_t base_seed,
                               std::uint64_t stream_index) {
  // Absorb the base and the index sequentially (a two-word sponge) rather
  // than xoring them together up front, so no (base, index) pair can
  // collide with a shifted (base', index') pair.
  std::uint64_t state = base_seed;
  state = SplitMix64(state) ^ stream_index;
  SplitMix64(state);
  return SplitMix64(state);
}

std::vector<std::size_t> RandomPermutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), rng.engine());
  return p;
}

}  // namespace rcbr
