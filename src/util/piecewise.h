// Piecewise-constant functions of discrete time.
//
// A renegotiation schedule is a stepwise-CBR rate function: constant
// between renegotiation instants. PiecewiseConstant stores such a function
// as (start_slot, value) breakpoints and provides evaluation, integration
// and step statistics. Slots are the paper's slotted-time unit (one video
// frame period).
#pragma once

#include <cstdint>
#include <vector>

namespace rcbr {

/// One constant segment: value `value` from slot `start` (inclusive) until
/// the next breakpoint (exclusive).
struct Step {
  std::int64_t start = 0;
  double value = 0;

  friend bool operator==(const Step&, const Step&) = default;
};

class PiecewiseConstant {
 public:
  /// Constructs a function on slots [0, length) from breakpoints. The
  /// first breakpoint must start at slot 0; starts must be strictly
  /// increasing and below `length`. Adjacent equal values are merged.
  PiecewiseConstant(std::vector<Step> steps, std::int64_t length);

  /// Constructs a constant function.
  static PiecewiseConstant Constant(double value, std::int64_t length);

  /// Constructs from one value per slot, merging equal runs.
  static PiecewiseConstant FromSamples(const std::vector<double>& samples);

  /// Value during slot t. Requires 0 <= t < length().
  double At(std::int64_t t) const;

  /// True iff the value changes entering slot t, i.e. At(t) != At(t-1).
  /// Always false at t = 0 (the initial value is not a change). This is a
  /// structural test on the breakpoint list, not a float comparison:
  /// construction merges equal adjacent values, so every stored breakpoint
  /// is a genuine change and "renegotiating to the same rate" cannot be
  /// represented. Requires 0 <= t < length().
  bool ChangesAt(std::int64_t t) const;

  /// Sum of values over slots [0, length): the integral in value*slots.
  double Integral() const;

  /// Sum of values over slots [from, to).
  double Integral(std::int64_t from, std::int64_t to) const;

  /// Mean value over the whole domain.
  double Mean() const;

  double MaxValue() const;
  double MinValue() const;

  /// Number of value changes strictly inside the domain (i.e. transitions;
  /// the initial value at slot 0 is not a change).
  std::int64_t change_count() const {
    return static_cast<std::int64_t>(steps_.size()) - 1;
  }

  /// Mean number of slots between changes: length / (changes + 1).
  double MeanRunLength() const;

  std::int64_t length() const { return length_; }
  const std::vector<Step>& steps() const { return steps_; }

  /// Expands to one value per slot.
  std::vector<double> ToSamples() const;

  /// The function rotated left by `shift` slots (slot t of the result is
  /// slot (t + shift) mod length of the original) — "randomly shifted
  /// versions" of a schedule, without expanding to samples.
  PiecewiseConstant Rotate(std::int64_t shift) const;

  friend bool operator==(const PiecewiseConstant& a,
                         const PiecewiseConstant& b) {
    return a.steps_ == b.steps_ && a.length_ == b.length_;
  }

 private:
  std::vector<Step> steps_;
  std::int64_t length_ = 0;
  mutable std::size_t cursor_ = 0;  // accelerates sequential At() calls
};

}  // namespace rcbr
