// Unit conventions used throughout the library.
//
// All quantities are stored in SI base units as `double`:
//   * data volumes in bits,
//   * rates in bits per second,
//   * time in seconds.
//
// The constants below make call sites read like the paper, which quotes
// buffer sizes in kilobits ("300 kb"), rates in kb/s ("374 kb/s") and
// megabits ("100 Mb"). Note the paper's "kb" is 10^3 bits (transmission
// units), not 2^10.
#pragma once

namespace rcbr {

inline constexpr double kBit = 1.0;
inline constexpr double kKilobit = 1e3;
inline constexpr double kMegabit = 1e6;
inline constexpr double kGigabit = 1e9;

inline constexpr double kBitPerSec = 1.0;
inline constexpr double kKbps = 1e3;
inline constexpr double kMbps = 1e6;
inline constexpr double kGbps = 1e9;

inline constexpr double kSecond = 1.0;
inline constexpr double kMillisecond = 1e-3;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;

/// Frame rate of the MPEG-1 Star Wars trace (frames per second).
inline constexpr double kStarWarsFps = 24.0;

}  // namespace rcbr
