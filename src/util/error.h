// Error handling helpers.
//
// Library code signals contract violations and unsatisfiable requests with
// exceptions derived from rcbr::Error, so callers can distinguish library
// failures from standard-library ones.
#pragma once

#include <stdexcept>
#include <string>

namespace rcbr {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A well-formed request has no feasible answer (e.g. a renegotiation
/// schedule under a buffer bound smaller than one frame).
class Infeasible : public Error {
 public:
  explicit Infeasible(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `message` unless `condition` holds.
inline void Require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

}  // namespace rcbr
