// Online statistics and confidence intervals.
//
// The paper's experimental method (Sec. V-B, VI) repeats randomized
// simulations "until the sample standard deviation of the estimate is less
// than 20% of the estimate" and reports 95% confidence intervals. These
// helpers implement that stopping rule.
#pragma once

#include <cstddef>
#include <span>

namespace rcbr {

/// Numerically stable (Welford) accumulator for mean / variance / extrema.
class OnlineStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (0 if fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean (stddev / sqrt(n); 0 if n < 2).
  double standard_error() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Two-sided confidence interval for a mean.
struct ConfidenceInterval {
  double lo = 0;
  double hi = 0;

  bool Contains(double x) const { return lo <= x && x <= hi; }
  double half_width() const { return (hi - lo) / 2; }
};

/// 95% normal-approximation confidence interval for the mean of `stats`.
/// Requires at least two samples.
ConfidenceInterval Confidence95(const OnlineStats& stats);

/// Implements the paper's replication stopping rules for an estimated
/// probability:
///  * stop when the standard error is below `relative_precision` times the
///    estimate (paper: 20%), or
///  * stop early when we are 95%-confident the estimate is below `target`
///    (used for very small renegotiation-failure probabilities), or
///  * stop at `max_samples` as a hard cap.
class ReplicationController {
 public:
  ReplicationController(double relative_precision, std::size_t min_samples,
                        std::size_t max_samples);

  /// Records one replication's estimate.
  void Add(double sample) { stats_.Add(sample); }

  /// True once one of the stopping rules fires. `below_target`, when
  /// nonnegative, enables the early-exit rule at that threshold.
  bool Done(double below_target = -1.0) const;

  const OnlineStats& stats() const { return stats_; }

 private:
  double relative_precision_;
  std::size_t min_samples_;
  std::size_t max_samples_;
  OnlineStats stats_;
};

/// Returns the q-th quantile (0 <= q <= 1) of `values` by linear
/// interpolation; the input need not be sorted (a copy is sorted).
double Quantile(std::span<const double> values, double q);

}  // namespace rcbr
