#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr {

Histogram::Histogram(std::vector<double> values) : values_(std::move(values)) {
  Require(!values_.empty(), "Histogram: empty value grid");
  Require(std::is_sorted(values_.begin(), values_.end()),
          "Histogram: grid must be increasing");
  for (std::size_t i = 1; i < values_.size(); ++i) {
    Require(values_[i] > values_[i - 1], "Histogram: grid must be strict");
  }
  weights_.assign(values_.size(), 0.0);
}

void Histogram::AddAt(std::size_t index, double weight) {
  Require(index < values_.size(), "Histogram::AddAt: index out of range");
  Require(weight >= 0, "Histogram::AddAt: negative weight");
  weights_[index] += weight;
  total_ += weight;
}

void Histogram::AddNearest(double value, double weight) {
  AddAt(NearestIndex(value), weight);
}

void Histogram::RemoveAt(std::size_t index, double weight) {
  Require(index < values_.size(), "Histogram::RemoveAt: index out of range");
  Require(weight >= 0, "Histogram::RemoveAt: negative weight");
  weights_[index] = std::max(0.0, weights_[index] - weight);
  total_ = std::max(0.0, total_ - weight);
}

std::size_t Histogram::NearestIndex(double value) const {
  const auto it = std::lower_bound(values_.begin(), values_.end(), value);
  if (it == values_.begin()) return 0;
  if (it == values_.end()) return values_.size() - 1;
  const auto hi = static_cast<std::size_t>(it - values_.begin());
  const auto lo = hi - 1;
  return (value - values_[lo] <= values_[hi] - value) ? lo : hi;
}

std::vector<double> Histogram::Probabilities() const {
  Require(total_ > 0, "Histogram::Probabilities: empty histogram");
  std::vector<double> p(weights_.size());
  for (std::size_t i = 0; i < p.size(); ++i) p[i] = weights_[i] / total_;
  return p;
}

double Histogram::Mean() const {
  Require(total_ > 0, "Histogram::Mean: empty histogram");
  double acc = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    acc += values_[i] * weights_[i];
  }
  return acc / total_;
}

double Histogram::Peak() const {
  Require(total_ > 0, "Histogram::Peak: empty histogram");
  for (std::size_t i = values_.size(); i-- > 0;) {
    if (weights_[i] > 0) return values_[i];
  }
  return values_.front();
}

double Histogram::Quantile(double q) const {
  Require(total_ > 0, "Histogram::Quantile: empty histogram");
  Require(q >= 0 && q <= 1, "Histogram::Quantile: q must be in [0,1]");
  const double target = q * total_;
  double cumulative = 0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    cumulative += weights_[i];
    // ">=" with a zero target: the first bucket with positive mass wins.
    if (weights_[i] > 0 && cumulative >= target) return values_[i];
  }
  return Peak();
}

void Histogram::Clear() {
  std::fill(weights_.begin(), weights_.end(), 0.0);
  total_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  Require(values_ == other.values_, "Histogram::Merge: grid mismatch");
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] += other.weights_[i];
  }
  total_ += other.total_;
}

void Histogram::Scale(double factor) {
  Require(factor >= 0, "Histogram::Scale: negative factor");
  for (double& w : weights_) w *= factor;
  total_ *= factor;
}

std::vector<double> UniformGrid(double lo, double hi, std::size_t count) {
  Require(count >= 1, "UniformGrid: count must be >= 1");
  Require(lo <= hi, "UniformGrid: lo > hi");
  if (count == 1) {
    Require(lo == hi, "UniformGrid: count 1 requires lo == hi");
    return {lo};
  }
  Require(lo < hi, "UniformGrid: count >= 2 requires lo < hi");
  std::vector<double> grid(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    grid[i] = lo + step * static_cast<double>(i);
  }
  grid.back() = hi;
  return grid;
}

}  // namespace rcbr
