#include "util/piecewise.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr {

PiecewiseConstant::PiecewiseConstant(std::vector<Step> steps,
                                     std::int64_t length)
    : length_(length) {
  Require(length > 0, "PiecewiseConstant: length must be positive");
  Require(!steps.empty(), "PiecewiseConstant: needs at least one step");
  Require(steps.front().start == 0,
          "PiecewiseConstant: first step must start at slot 0");
  steps_.reserve(steps.size());
  for (const Step& s : steps) {
    Require(s.start < length, "PiecewiseConstant: step starts past the end");
    if (!steps_.empty()) {
      Require(s.start > steps_.back().start,
              "PiecewiseConstant: starts must be strictly increasing");
      if (s.value == steps_.back().value) continue;  // merge equal runs
    }
    steps_.push_back(s);
  }
}

PiecewiseConstant PiecewiseConstant::Constant(double value,
                                              std::int64_t length) {
  return PiecewiseConstant({{0, value}}, length);
}

PiecewiseConstant PiecewiseConstant::FromSamples(
    const std::vector<double>& samples) {
  Require(!samples.empty(), "PiecewiseConstant::FromSamples: empty input");
  std::vector<Step> steps;
  steps.push_back({0, samples[0]});
  for (std::size_t t = 1; t < samples.size(); ++t) {
    if (samples[t] != steps.back().value) {
      steps.push_back({static_cast<std::int64_t>(t), samples[t]});
    }
  }
  return PiecewiseConstant(std::move(steps),
                           static_cast<std::int64_t>(samples.size()));
}

double PiecewiseConstant::At(std::int64_t t) const {
  Require(t >= 0 && t < length_, "PiecewiseConstant::At: slot out of range");
  // Fast path: sequential access.
  if (cursor_ >= steps_.size() || steps_[cursor_].start > t) cursor_ = 0;
  while (cursor_ + 1 < steps_.size() && steps_[cursor_ + 1].start <= t) {
    ++cursor_;
  }
  return steps_[cursor_].value;
}

bool PiecewiseConstant::ChangesAt(std::int64_t t) const {
  Require(t >= 0 && t < length_,
          "PiecewiseConstant::ChangesAt: slot out of range");
  if (t == 0) return false;
  const auto it = std::lower_bound(
      steps_.begin(), steps_.end(), t,
      [](const Step& s, std::int64_t slot) { return s.start < slot; });
  return it != steps_.end() && it->start == t;
}

double PiecewiseConstant::Integral() const { return Integral(0, length_); }

double PiecewiseConstant::Integral(std::int64_t from, std::int64_t to) const {
  Require(from >= 0 && to <= length_ && from <= to,
          "PiecewiseConstant::Integral: bad range");
  double acc = 0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const std::int64_t seg_start = steps_[i].start;
    const std::int64_t seg_end =
        (i + 1 < steps_.size()) ? steps_[i + 1].start : length_;
    const std::int64_t lo = std::max(seg_start, from);
    const std::int64_t hi = std::min(seg_end, to);
    if (hi > lo) acc += steps_[i].value * static_cast<double>(hi - lo);
  }
  return acc;
}

double PiecewiseConstant::Mean() const {
  return Integral() / static_cast<double>(length_);
}

double PiecewiseConstant::MaxValue() const {
  double m = steps_.front().value;
  for (const Step& s : steps_) m = std::max(m, s.value);
  return m;
}

double PiecewiseConstant::MinValue() const {
  double m = steps_.front().value;
  for (const Step& s : steps_) m = std::min(m, s.value);
  return m;
}

double PiecewiseConstant::MeanRunLength() const {
  return static_cast<double>(length_) / static_cast<double>(steps_.size());
}

PiecewiseConstant PiecewiseConstant::Rotate(std::int64_t shift) const {
  std::int64_t s = shift % length_;
  if (s < 0) s += length_;
  if (s == 0) return *this;
  std::vector<Step> rotated;
  rotated.reserve(steps_.size() + 1);
  // Part 1: segments covering [s, length) move to the front.
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const std::int64_t seg_start = steps_[i].start;
    const std::int64_t seg_end =
        (i + 1 < steps_.size()) ? steps_[i + 1].start : length_;
    if (seg_end <= s) continue;
    rotated.push_back({std::max<std::int64_t>(seg_start - s, 0),
                       steps_[i].value});
  }
  // Part 2: segments covering [0, s) follow, offset by length - s.
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const std::int64_t seg_start = steps_[i].start;
    if (seg_start >= s) break;
    rotated.push_back({seg_start + (length_ - s), steps_[i].value});
  }
  return PiecewiseConstant(std::move(rotated), length_);
}

std::vector<double> PiecewiseConstant::ToSamples() const {
  std::vector<double> samples(static_cast<std::size_t>(length_));
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const std::int64_t seg_start = steps_[i].start;
    const std::int64_t seg_end =
        (i + 1 < steps_.size()) ? steps_[i + 1].start : length_;
    for (std::int64_t t = seg_start; t < seg_end; ++t) {
      samples[static_cast<std::size_t>(t)] = steps_[i].value;
    }
  }
  return samples;
}

}  // namespace rcbr
