#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace rcbr::json {

std::string Number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string Quote(const std::string& text) {
  std::string out = "\"";
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace rcbr::json
