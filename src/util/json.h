// Minimal JSON serialization helpers.
//
// Every machine-readable artifact this repo writes (BENCH_<name>.json,
// metrics snapshots, JSONL event traces) is assembled from these two
// primitives so the escaping and number-formatting rules live in exactly
// one place:
//  * numbers print in round-trip decimal form ("%.17g"), and NaN/Inf —
//    which JSON cannot represent — become null;
//  * strings are quoted with ", \, and all control characters escaped.
#pragma once

#include <string>

namespace rcbr::json {

/// Round-trip decimal form of `value`; "null" for NaN and +/-Inf.
std::string Number(double value);

/// `text` as a quoted JSON string: ", \\ and control characters escaped
/// (\n, \t, \r and \uXXXX for the rest), everything else passed through.
std::string Quote(const std::string& text);

}  // namespace rcbr::json
