#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace rcbr {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::mean() const { return mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::standard_error() const {
  if (count_ < 2) return 0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double OnlineStats::min() const { return count_ ? min_ : 0; }
double OnlineStats::max() const { return count_ ? max_ : 0; }

ConfidenceInterval Confidence95(const OnlineStats& stats) {
  Require(stats.count() >= 2, "Confidence95: need at least two samples");
  const double half = 1.959963984540054 * stats.standard_error();
  return {stats.mean() - half, stats.mean() + half};
}

ReplicationController::ReplicationController(double relative_precision,
                                             std::size_t min_samples,
                                             std::size_t max_samples)
    : relative_precision_(relative_precision),
      min_samples_(min_samples),
      max_samples_(max_samples) {
  Require(relative_precision > 0, "ReplicationController: precision <= 0");
  Require(min_samples >= 2, "ReplicationController: need min_samples >= 2");
  Require(max_samples >= min_samples,
          "ReplicationController: max_samples < min_samples");
}

bool ReplicationController::Done(double below_target) const {
  if (stats_.count() >= max_samples_) return true;
  if (stats_.count() < min_samples_) return false;
  const double mean = stats_.mean();
  // Degenerate all-zero estimates never tighten relative precision; the
  // early-exit and max-samples rules handle them.
  if (mean > 0 && stats_.standard_error() <= relative_precision_ * mean) {
    return true;
  }
  if (below_target >= 0) {
    const ConfidenceInterval ci = Confidence95(stats_);
    if (ci.hi < below_target) return true;
  }
  return false;
}

double Quantile(std::span<const double> values, double q) {
  Require(!values.empty(), "Quantile: empty input");
  Require(q >= 0 && q <= 1, "Quantile: q outside [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace rcbr
