// Sharded, contiguous storage for the per-link PortControllers.
//
// The simulator used to keep one unique_ptr<PortController> per link in a
// single vector — every admission touched scattered heap nodes, and all
// per-port bookkeeping serialized through one allocation-heavy structure.
// PortShards stores the controllers by value, grouped into per-shard
// blocks of consecutive link indices: admission decisions and
// renegotiator bookkeeping for ports in different shards share no
// container or cache lines. Processing stays single-threaded and in call
// id order — sharding here is a layout/isolation refactor, so the pinned
// deterministic event order is untouched (link index -> shard is a pure
// function of the topology, never of arrival order).
//
// Controllers never move after construction: SignalingPath borrows raw
// PortController pointers for the lifetime of the run, so each shard
// reserves its exact port count up front.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/recorder.h"
#include "signaling/port_controller.h"

namespace rcbr::signaling {

class PortShards {
 public:
  /// Builds one controller per capacity, all with the same tracking /
  /// recorder / tolerance configuration, block-partitioned into
  /// `shard_count` shards (0 = min(#links, 8)).
  PortShards(const std::vector<double>& capacities_bps,
             bool track_connections, obs::Recorder* recorder,
             double admission_tolerance_bps, std::size_t shard_count = 0);

  PortController& port(std::size_t link) {
    const Location& loc = locate_[link];
    return shards_[loc.shard].ports[loc.index];
  }
  const PortController& port(std::size_t link) const {
    const Location& loc = locate_[link];
    return shards_[loc.shard].ports[loc.index];
  }

  std::size_t size() const { return locate_.size(); }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_of(std::size_t link) const {
    return locate_[link].shard;
  }

  /// Pre-sizes every port's per-VCI table for about `n` concurrent
  /// connections crossing it.
  void ReserveConnections(std::size_t n);

 private:
  struct Shard {
    std::vector<PortController> ports;
  };
  struct Location {
    std::uint32_t shard = 0;
    std::uint32_t index = 0;
  };

  std::vector<Shard> shards_;
  std::vector<Location> locate_;
};

}  // namespace rcbr::signaling
