#include "signaling/retry.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace rcbr::signaling {

namespace {

void ValidateRetryOptions(const RetryOptions& retry) {
  Require(!std::isnan(retry.timeout_s) && retry.timeout_s > 0,
          "RetryingRenegotiator: timeout must be positive");
  Require(retry.max_retries >= 0,
          "RetryingRenegotiator: negative retry count");
  Require(!std::isnan(retry.backoff_base_s) && retry.backoff_base_s >= 0,
          "RetryingRenegotiator: negative backoff base");
  Require(retry.backoff_multiplier >= 1,
          "RetryingRenegotiator: backoff multiplier must be >= 1");
  Require(retry.jitter_fraction >= 0 && retry.jitter_fraction < 1,
          "RetryingRenegotiator: jitter fraction must be in [0,1)");
  Require(retry.resync_every_grants >= 0,
          "RetryingRenegotiator: negative resync period");
}

}  // namespace

double BackoffSeconds(const RetryOptions& retry, std::int64_t attempt,
                      Rng* rng) {
  double backoff =
      retry.backoff_base_s * std::pow(retry.backoff_multiplier,
                                      static_cast<double>(attempt));
  if (retry.jitter_fraction > 0) {
    backoff *= 1.0 + rng->Uniform(-retry.jitter_fraction,
                                  retry.jitter_fraction);
  }
  return backoff;
}

RetryingRenegotiator::RetryingRenegotiator(SignalingPath* path,
                                           std::uint64_t vci,
                                           double initial_rate_bps,
                                           const RetryOptions& retry,
                                           const LossyChannelOptions& channel,
                                           Rng* rng)
    : path_(path),
      vci_(vci),
      retry_(retry),
      channel_(channel),
      rng_(rng),
      granted_(initial_rate_bps) {
  Require(path != nullptr, "RetryingRenegotiator: null path");
  Require(rng != nullptr, "RetryingRenegotiator: null rng");
  ValidateRetryOptions(retry);
  ValidateChannelOptions(channel);
  Require(initial_rate_bps >= 0, "RetryingRenegotiator: negative rate");
  span_latency_ = obs::FindSpan(retry_.recorder, "signaling.span.reneg_latency_s");
  span_budget_ = obs::FindSpan(retry_.recorder, "signaling.span.retry_budget");
}

bool RetryingRenegotiator::Traverse(double delta_bps, double now_seconds,
                                    bool* lost) {
  *lost = false;
  std::vector<CellVerdict> grants;
  grants.reserve(path_->hop_count());
  for (std::size_t k = 0; k < path_->hop_count(); ++k) {
    if (rng_->Bernoulli(EffectiveLossProbability(channel_))) {
      // Lost in flight: hops 0..k-1 hold a phantom grant until the
      // timeout-path resync rescinds it.
      if constexpr (obs::kEnabled) {
        obs::Count(channel_.recorder, "signaling.cells_lost");
        obs::Emit(channel_.recorder, now_seconds, obs::EventKind::kRmCellLoss,
                  vci_, {"delta_bps", delta_bps},
                  {"hop", static_cast<double>(k)});
      }
      *lost = true;
      return false;
    }
    const CellVerdict verdict =
        path_->hop(k)->Handle(RmCell::Delta(vci_, delta_bps, rung_),
                              now_seconds);
    if (!verdict.accepted) {
      // Explicit denial: the controller answers, so the rollback cells are
      // part of the (reliable) response path — byte-exact restore.
      for (std::size_t j = 0; j < grants.size(); ++j) {
        path_->hop(j)->RollbackDelta(vci_, grants[j]);
      }
      return false;
    }
    grants.push_back(verdict);
  }
  return true;
}

RenegotiationOutcome RetryingRenegotiator::Renegotiate(double new_rate_bps,
                                                       double now_seconds) {
  Require(new_rate_bps >= 0, "RetryingRenegotiator: negative rate");
  RenegotiationOutcome out;
  if (new_rate_bps == granted_) {
    out.accepted = true;
    return out;
  }
  ++stats_.requests;
  const double delta = new_rate_bps - granted_;
  for (std::int64_t attempt = 0;; ++attempt) {
    ++stats_.attempts;
    ++out.attempts;
    bool lost = false;
    const bool granted = Traverse(delta, now_seconds, &lost);
    if (!granted && !lost) {
      // Definitive answer; never retried.
      ++stats_.denials;
      out.latency_s += path_->RoundTripSeconds() + ExtraDelaySeconds(channel_);
      RecordSpans(out);
      return out;
    }
    if (granted) {
      const double rtt =
          path_->RoundTripSeconds() + ExtraDelaySeconds(channel_);
      if (rtt <= retry_.timeout_s) {
        granted_ = new_rate_bps;
        acked_rung_ = rung_;  // a probe's rung becomes the contract rung
        out.accepted = true;
        out.latency_s += rtt;
        if (retry_.resync_every_grants > 0 &&
            ++grants_since_resync_ >= retry_.resync_every_grants) {
          Resync(now_seconds);
        }
        RecordSpans(out);
        return out;
      }
      // Delivered, but the response is past the deadline (delay spike):
      // the source has already declared the attempt dead, so the stale
      // grant must not stand.
    }
    // Timed out — either lost in flight or delivered too late. Rescind
    // whatever partial or stale state the attempt left with a reliable
    // absolute resync at the acknowledged rate *and rung*: carrying the
    // in-flight requested rung here would rewrite the upgrade queues for
    // a promotion that was never granted.
    path_->Resync(vci_, granted_, now_seconds, acked_rung_);
    ++stats_.timeouts;
    out.latency_s += retry_.timeout_s;
    if constexpr (obs::kEnabled) {
      obs::Count(retry_.recorder, "signaling.reneg_timeouts");
      obs::Emit(retry_.recorder, now_seconds, obs::EventKind::kRenegTimeout,
                vci_, {"delta_bps", delta},
                {"attempt", static_cast<double>(attempt + 1)});
    }
    if (attempt >= retry_.max_retries) {
      ++stats_.abandoned;
      out.timed_out = true;
      RecordSpans(out);
      return out;
    }
    const double backoff = BackoffSeconds(retry_, attempt, rng_);
    out.latency_s += backoff;
    ++stats_.retries;
    if constexpr (obs::kEnabled) {
      obs::Count(retry_.recorder, "signaling.reneg_retries");
      obs::Emit(retry_.recorder, now_seconds, obs::EventKind::kRenegRetry,
                vci_, {"delta_bps", delta}, {"backoff_s", backoff},
                {"attempt", static_cast<double>(attempt + 2)});
    }
  }
}

void RetryingRenegotiator::RecordSpans(const RenegotiationOutcome& out) {
  if (span_latency_ != nullptr) span_latency_->Record(out.latency_s);
  if (span_budget_ != nullptr) {
    span_budget_->Record(static_cast<double>(out.attempts) /
                         static_cast<double>(1 + retry_.max_retries));
  }
}

void RetryingRenegotiator::Resync(double now_seconds) {
  path_->Resync(vci_, granted_, now_seconds, acked_rung_);
  ++stats_.resyncs;
  grants_since_resync_ = 0;
  obs::Count(retry_.recorder, "signaling.resyncs");
}

double RetryingRenegotiator::DriftBps(std::size_t hop) const {
  return path_->hop(hop)->TrackedRate(vci_) - granted_;
}

double RetryingRenegotiator::MaxAbsDriftBps() const {
  double worst = 0;
  for (std::size_t k = 0; k < path_->hop_count(); ++k) {
    worst = std::max(worst, std::abs(DriftBps(k)));
  }
  return worst;
}

}  // namespace rcbr::signaling
