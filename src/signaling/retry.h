// Acknowledged renegotiation with timeout, bounded retries, exponential
// backoff, and drift repair.
//
// The paper's scheme (Sec. III-B) is deliberately unacknowledged: delta
// cells may vanish and the source proceeds on its own belief, relying on
// the periodic absolute-rate resync to repair drift. The ATM ABR source
// rules (Jain et al., "Source Behavior for ATM ABR Traffic Management")
// show the other canonical design point: the source arms a timeout per
// request, retransmits with exponential backoff (plus jitter so
// synchronized sources do not retry in lockstep), and gives up after a
// bounded number of attempts. RetryingRenegotiator implements that
// acknowledged variant on top of the same lossy per-hop channel:
//
//  - A request cell traverses the path hop by hop; each hop may lose it
//    (base loss plus any active ChannelConditions burst). Loss at hop k
//    leaves hops 0..k-1 holding a phantom grant.
//  - Before every retransmit (and before giving up) the source sends a
//    reliable absolute-rate resync at its last *acknowledged* rate, so a
//    timed-out attempt leaves no drift behind — this is what makes bounded
//    retries safe to compose with the all-or-nothing path semantics.
//  - A response that arrives after the timeout (delivery delayed past the
//    deadline by a ChannelConditions::extra_delay_s spike) is treated as
//    lost-late: the grant is rescinded by the same resync and the source
//    retries, modeling reordered/stale signaling.
//  - An explicit denial is a definitive answer and is never retried; the
//    path has already rolled the upstream grants back byte-exactly.
//
// Everything is deterministic given the Rng: loss draws and jitter draws
// come from the caller's seeded stream in a fixed order.
#pragma once

#include <cstdint>

#include "obs/recorder.h"
#include "signaling/lossy_channel.h"
#include "signaling/path.h"
#include "util/rng.h"

namespace rcbr::signaling {

struct RetryOptions {
  /// Seconds the source waits for the grant/deny response before it
  /// declares the attempt lost. Must exceed the path round trip or every
  /// request times out.
  double timeout_s = 0.05;
  /// Retransmissions after the first attempt (0 = a single try).
  std::int64_t max_retries = 3;
  /// First backoff interval, seconds; attempt k waits
  /// backoff_base_s * backoff_multiplier^(k-1), scaled by jitter.
  double backoff_base_s = 0.02;
  double backoff_multiplier = 2.0;
  /// Uniform jitter applied to each backoff: the wait is multiplied by
  /// (1 + U(-jitter_fraction, +jitter_fraction)). Must be in [0, 1).
  double jitter_fraction = 0.1;
  /// Send a reliable absolute-rate resync after this many *successful*
  /// renegotiations (0 = never). Repairs state the source cannot see is
  /// broken — e.g. a controller that crashed and restarted empty.
  std::int64_t resync_every_grants = 0;
  /// Optional sink for kRenegTimeout/kRenegRetry/kRmCellLoss events,
  /// "signaling.reneg_timeouts"/"signaling.reneg_retries" counters, and
  /// the "signaling.span.*" latency / retry-budget histograms.
  obs::Recorder* recorder = nullptr;
};

/// Backoff before retransmission `attempt` (0-based):
///   backoff_base_s * backoff_multiplier^attempt,
/// scaled by (1 + U(-jitter_fraction, +jitter_fraction)) drawn from
/// `rng` when jitter is on. This is *the* backoff contract — the
/// renegotiator's retransmits and the daemon's reconnect loop
/// (net/client.cc) both call it, so the sim-time retry tests pin the
/// wall-clock behavior too.
double BackoffSeconds(const RetryOptions& retry, std::int64_t attempt,
                      Rng* rng);

struct RetryStats {
  std::int64_t requests = 0;   // Renegotiate() calls with a rate change
  std::int64_t attempts = 0;   // cells sent (first tries + retries)
  std::int64_t retries = 0;    // retransmissions after a timeout
  std::int64_t timeouts = 0;   // attempts that missed the deadline
  std::int64_t denials = 0;    // explicit full-path denials
  std::int64_t abandoned = 0;  // requests that exhausted max_retries
  std::int64_t resyncs = 0;    // reliable repair cells sent
};

struct RenegotiationOutcome {
  bool accepted = false;
  /// True when the request died of exhausted retries rather than an
  /// explicit denial.
  bool timed_out = false;
  /// Cells sent for this request (>= 1).
  std::int64_t attempts = 0;
  /// Source-perceived completion latency: round trips, timeout waits, and
  /// backoff sleeps, seconds.
  double latency_s = 0;
};

class RetryingRenegotiator {
 public:
  /// `path` and `rng` are borrowed and must outlive the renegotiator; the
  /// connection must already be set up at `initial_rate_bps` on every
  /// hop, and every hop must run with per-VCI tracking (resync repair
  /// depends on it).
  RetryingRenegotiator(SignalingPath* path, std::uint64_t vci,
                       double initial_rate_bps, const RetryOptions& retry,
                       const LossyChannelOptions& channel, Rng* rng);

  /// Renegotiates to `new_rate_bps`, retrying on timeout. On a false
  /// return (denial or exhausted retries) every hop is back at the last
  /// acknowledged rate. `now_seconds` stamps trace events; retries are
  /// resolved inline on that time axis (the reported latency does not
  /// shift subsequent simulation events).
  RenegotiationOutcome Renegotiate(double new_rate_bps, double now_seconds);

  /// Sends the reliable absolute-rate resync at the acknowledged rate —
  /// the repair a caller applies after a controller crash/restart.
  void Resync(double now_seconds);

  /// The last rate the network acknowledged (unlike the unacked
  /// renegotiators there is no belief drift: belief only moves on a
  /// grant).
  double granted_rate_bps() const { return granted_; }

  /// Establishes the contract rung carried on every subsequent cell
  /// (scalar contracts leave it at 0). Sets both the requested and the
  /// acknowledged rung — call when the contract really is at `rung`
  /// (connect, adopted grant), not for an in-flight probe.
  void set_rung(std::uint32_t rung) { rung_ = acked_rung_ = rung; }

  /// Rung carried on *request* cells only, for probing a different rung
  /// (an upgrade attempt) without committing to it: rescind resyncs —
  /// the timeout path and Resync() — keep carrying the acknowledged
  /// rung, so a timed-out or abandoned probe cannot corrupt the upgrade
  /// queues (the call is still a waiter at its real rung). A grant
  /// promotes the requested rung to acknowledged.
  void SetRequestedRung(std::uint32_t rung) { rung_ = rung; }
  std::uint32_t rung() const { return rung_; }
  /// The rung of the last acknowledged contract — what resyncs carry.
  std::uint32_t acked_rung() const { return acked_rung_; }

  /// Hop k's tracked rate minus the acknowledged rate, bits/s. Nonzero
  /// only while some hop's state is corrupted (e.g. after a crash,
  /// before the next repair).
  double DriftBps(std::size_t hop) const;
  double MaxAbsDriftBps() const;

  const RetryStats& stats() const { return stats_; }

 private:
  /// One request cell along the path. Returns true when every hop
  /// granted; `lost` reports loss-in-flight (vs an explicit denial).
  bool Traverse(double delta_bps, double now_seconds, bool* lost);

  /// Feeds the latency / retry-budget spans for a resolved request.
  void RecordSpans(const RenegotiationOutcome& out);

  SignalingPath* path_;
  std::uint64_t vci_;
  RetryOptions retry_;
  LossyChannelOptions channel_;
  Rng* rng_;
  double granted_;
  std::uint32_t rung_ = 0;
  std::uint32_t acked_rung_ = 0;
  std::int64_t grants_since_resync_ = 0;
  RetryStats stats_;
  /// Span handles (null when spans are off): source-perceived completion
  /// latency per request, and retry-budget consumption — the fraction of
  /// the (1 + max_retries) cell budget each request spent.
  obs::SpanHistogram* span_latency_ = nullptr;
  obs::SpanHistogram* span_budget_ = nullptr;
};

}  // namespace rcbr::signaling
