// RM-cell loss and parameter drift (Sec. III-B, footnote 2).
//
// "We use a difference because this simplifies the computation at the
// switch controller ... This has the problem of parameter drift in case
// of RM cell loss. To overcome this, we can resynchronize rates by
// periodically sending an RM cell with the true explicit rate."
//
// LossyRenegotiator models exactly that failure mode on a single port:
// delta cells are dropped with a configurable probability before reaching
// the port (an unacknowledged lightweight scheme, so the source proceeds
// on its own view of the rate), and the source periodically emits an
// absolute-rate resync cell that repairs the port's per-connection and
// aggregate state. LossyPathRenegotiator generalizes it to a multi-hop
// SignalingPath: a cell lost in flight at hop k leaves hops 0..k-1
// granted but the rest drifted, and the rollback cells of an explicit
// denial can themselves be lost — both repaired by the periodic resync.
// The ablation bench sweeps loss probability against resync period and
// reports the residual drift.
#pragma once

#include <cstdint>

#include "obs/recorder.h"
#include "signaling/path.h"
#include "signaling/port_controller.h"
#include "util/rng.h"

namespace rcbr::signaling {

/// Time-varying channel impairments layered on top of a channel's base
/// loss probability — the hook the fault-injection subsystem mutates as
/// its timeline advances. The channel reads it on every cell, so a burst
/// raised at simulation time t affects exactly the cells sent while the
/// burst is active. All-zero conditions are byte-equivalent to no
/// conditions at all.
struct ChannelConditions {
  /// Added to the per-hop cell loss probability (sum clamped to 1, so a
  /// value of 1 is a total signaling outage).
  double extra_loss_probability = 0;
  /// Added to the request's one-way delivery delay, seconds. A response
  /// arriving after the requester's timeout is treated as lost-late
  /// (reordered past the retransmit), even though the hops applied it.
  double extra_delay_s = 0;
};

struct LossyChannelOptions {
  /// Probability that a delta cell is lost before the port sees it (per
  /// hop, for the path variant).
  double cell_loss_probability = 0.0;
  /// Emit an absolute-rate resync after this many delta cells (0 = never).
  std::int64_t resync_every_cells = 0;
  /// Optional observability sink: kRmCellLoss events on dropped delta
  /// cells and kResync events on resyncs (time = the `now_seconds` the
  /// caller passes, i.e. simulation seconds), plus "signaling.*"
  /// counters.
  obs::Recorder* recorder = nullptr;
  /// Optional live impairments (borrowed; may be null). Sampled per cell,
  /// so the owner can mutate it mid-run to model loss bursts and delay
  /// spikes without touching the channel.
  const ChannelConditions* conditions = nullptr;
};

/// Throws InvalidArgument unless loss probability is in [0,1) (and not
/// NaN) and the resync period is non-negative.
void ValidateChannelOptions(const LossyChannelOptions& options);

/// The per-cell loss probability with any active impairment applied.
inline double EffectiveLossProbability(const LossyChannelOptions& options) {
  const double extra =
      options.conditions ? options.conditions->extra_loss_probability : 0.0;
  const double p = options.cell_loss_probability + extra;
  return p < 1.0 ? p : 1.0;
}

/// The extra one-way delivery delay currently in force, seconds.
inline double ExtraDelaySeconds(const LossyChannelOptions& options) {
  return options.conditions ? options.conditions->extra_delay_s : 0.0;
}

struct DriftStats {
  std::int64_t cells_sent = 0;
  std::int64_t cells_lost = 0;
  std::int64_t resyncs_sent = 0;
};

class LossyRenegotiator {
 public:
  /// `port` is borrowed and must outlive the renegotiator. The connection
  /// must already be admitted at `initial_rate_bps`.
  LossyRenegotiator(PortController* port, std::uint64_t vci,
                    double initial_rate_bps,
                    const LossyChannelOptions& options, Rng* rng);

  /// Renegotiates to `new_rate_bps` by sending a delta cell relative to
  /// the source's *believed* rate. Lost cells silently skip the port (the
  /// source still updates its belief — that is the drift). Returns true
  /// if the port accepted (or never saw) the request. `now_seconds`
  /// stamps any trace events with simulation time.
  bool Renegotiate(double new_rate_bps, double now_seconds);

  /// Sends an absolute-rate resync immediately.
  void Resync(double now_seconds);

  /// The source's view of its reserved rate.
  double believed_rate_bps() const { return believed_; }

  /// Ladder rung the connection occupies; carried on every subsequent
  /// cell so the port's upgrade queue follows the call's resolution
  /// (scalar contracts leave it at 0).
  void set_rung(std::uint32_t rung) { rung_ = rung; }
  std::uint32_t rung() const { return rung_; }

  /// Port belief minus source belief, bits/s (0 when synchronized).
  double DriftBps() const;

  const DriftStats& stats() const { return stats_; }

 private:
  PortController* port_;
  std::uint64_t vci_;
  LossyChannelOptions options_;
  Rng* rng_;
  double believed_;
  std::uint32_t rung_ = 0;
  std::int64_t cells_since_resync_ = 0;
  DriftStats stats_;
};

/// The multi-hop composition the unified engine runs its calls on: one
/// renegotiating source whose delta cells traverse a SignalingPath hop by
/// hop through a lossy channel. Loss in flight at hop k means hops
/// 0..k-1 applied the delta but downstream hops never saw it; an explicit
/// denial at hop k triggers per-hop rollback cells, each of which may
/// itself be lost. Either way the periodic absolute-rate resync restores
/// every hop (the ports must run with tracking enabled).
class LossyPathRenegotiator {
 public:
  /// `path` is borrowed and must outlive the renegotiator. The connection
  /// must already be set up at `initial_rate_bps` on every hop.
  LossyPathRenegotiator(SignalingPath* path, std::uint64_t vci,
                        double initial_rate_bps,
                        const LossyChannelOptions& options, Rng* rng);

  /// Renegotiates to `new_rate_bps`. Returns false only on an explicit
  /// denial; losses look like grants to the unacknowledged source.
  bool Renegotiate(double new_rate_bps, double now_seconds);

  /// Sends the absolute-rate resync along the whole path (reliable).
  void Resync(double now_seconds);

  double believed_rate_bps() const { return believed_; }

  /// Ladder rung carried on every subsequent cell (see
  /// LossyRenegotiator::set_rung).
  void set_rung(std::uint32_t rung) { rung_ = rung; }
  std::uint32_t rung() const { return rung_; }

  /// Hop k's tracked rate minus the source belief, bits/s.
  double DriftBps(std::size_t hop) const;
  double MaxAbsDriftBps() const;

  const DriftStats& stats() const { return stats_; }

 private:
  SignalingPath* path_;
  std::uint64_t vci_;
  LossyChannelOptions options_;
  Rng* rng_;
  double believed_;
  std::uint32_t rung_ = 0;
  std::int64_t cells_since_resync_ = 0;
  DriftStats stats_;
};

}  // namespace rcbr::signaling
