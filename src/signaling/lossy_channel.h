// RM-cell loss and parameter drift (Sec. III-B, footnote 2).
//
// "We use a difference because this simplifies the computation at the
// switch controller ... This has the problem of parameter drift in case
// of RM cell loss. To overcome this, we can resynchronize rates by
// periodically sending an RM cell with the true explicit rate."
//
// LossyRenegotiator models exactly that failure mode: delta cells are
// dropped with a configurable probability before reaching the port (an
// unacknowledged lightweight scheme, so the source proceeds on its own
// view of the rate), and the source periodically emits an absolute-rate
// resync cell that repairs the port's per-connection and aggregate state.
// The ablation bench sweeps loss probability against resync period and
// reports the residual drift.
#pragma once

#include <cstdint>

#include "obs/recorder.h"
#include "signaling/port_controller.h"
#include "util/rng.h"

namespace rcbr::signaling {

struct LossyChannelOptions {
  /// Probability that a delta cell is lost before the port sees it.
  double cell_loss_probability = 0.0;
  /// Emit an absolute-rate resync after this many delta cells (0 = never).
  std::int64_t resync_every_cells = 0;
  /// Optional observability sink: kRmCellLoss events on dropped delta
  /// cells and kResync events on resyncs (time = cells sent, id = VCI),
  /// plus "signaling.*" counters.
  obs::Recorder* recorder = nullptr;
};

struct DriftStats {
  std::int64_t cells_sent = 0;
  std::int64_t cells_lost = 0;
  std::int64_t resyncs_sent = 0;
};

class LossyRenegotiator {
 public:
  /// `port` is borrowed and must outlive the renegotiator. The connection
  /// must already be admitted at `initial_rate_bps`.
  LossyRenegotiator(PortController* port, std::uint64_t vci,
                    double initial_rate_bps,
                    const LossyChannelOptions& options, Rng* rng);

  /// Renegotiates to `new_rate_bps` by sending a delta cell relative to
  /// the source's *believed* rate. Lost cells silently skip the port (the
  /// source still updates its belief — that is the drift). Returns true
  /// if the port accepted (or never saw) the request.
  bool Renegotiate(double new_rate_bps);

  /// Sends an absolute-rate resync immediately.
  void Resync();

  /// The source's view of its reserved rate.
  double believed_rate_bps() const { return believed_; }

  /// Port belief minus source belief, bits/s (0 when synchronized).
  double DriftBps() const;

  const DriftStats& stats() const { return stats_; }

 private:
  PortController* port_;
  std::uint64_t vci_;
  LossyChannelOptions options_;
  Rng* rng_;
  double believed_;
  std::int64_t cells_since_resync_ = 0;
  DriftStats stats_;
};

}  // namespace rcbr::signaling
