// Multi-hop renegotiation (Sec. III-C).
//
// "As the mean number of hops in the network increases, the probability of
// renegotiation failure is likely to increase since each hop is a possible
// point of failure." SignalingPath carries a renegotiation request across
// a sequence of port controllers with all-or-nothing semantics: if any hop
// denies, grants already made upstream are rolled back — exactly, by
// restoring each hop's pre-grant snapshot, so a denied request leaves
// every port byte-identical to its prior state. It also models the
// signaling round-trip so online sources can reason about latency.
#pragma once

#include <cstdint>
#include <vector>

#include "signaling/port_controller.h"

namespace rcbr::signaling {

struct PathOutcome {
  bool accepted = false;
  /// Index of the first hop that denied (-1 when accepted).
  int bottleneck_hop = -1;
  /// Signaling round-trip time for this request, seconds.
  double round_trip_s = 0;
};

struct PathStats {
  std::int64_t requests = 0;
  std::int64_t failures = 0;
};

class SignalingPath {
 public:
  /// `hops` are borrowed; they must outlive the path. `per_hop_delay_s`
  /// models propagation plus controller processing per hop, one way.
  SignalingPath(std::vector<PortController*> hops, double per_hop_delay_s);

  std::size_t hop_count() const { return hops_.size(); }
  PortController* hop(std::size_t k) const { return hops_[k]; }
  double per_hop_delay_s() const { return per_hop_delay_; }
  /// Full round trip across all hops and back.
  double RoundTripSeconds() const;
  const PathStats& stats() const { return stats_; }

  /// Establishes a connection at `rate_bps` on every hop (all or nothing;
  /// a denial restores the upstream hops' exact pre-setup utilization).
  /// `rung > 0` admits below the full ask: every hop that grants also
  /// enqueues the VCI on its upgrade queue (and a rolled-back setup
  /// leaves no queue entry behind).
  bool SetupConnection(std::uint64_t vci, double rate_bps,
                       std::uint32_t rung = 0);

  /// Tears the connection down on every hop.
  void TeardownConnection(std::uint64_t vci, double rate_bps_hint = 0);

  /// Carries a delta renegotiation across the path at simulation time
  /// `now_seconds` (stamps any hop's trace events). Decreases always
  /// succeed; an increase that is denied at hop k is rolled back at hops
  /// 0..k-1 — byte-exactly, including upgrade-queue membership — and the
  /// connection keeps its previous rate everywhere. `rung` is the ladder
  /// rung the connection lands on if every hop grants (scalar: 0).
  PathOutcome RequestDelta(std::uint64_t vci, double delta_bps,
                           double now_seconds, std::uint32_t rung = 0);

  /// Sends a drift-resync cell along the path (never fails). The cell
  /// carries the connection's rung so crash repair also rebuilds the
  /// upgrade queues.
  void Resync(std::uint64_t vci, double absolute_rate_bps,
              double now_seconds, std::uint32_t rung = 0);

 private:
  std::vector<PortController*> hops_;
  double per_hop_delay_;
  PathStats stats_;
};

}  // namespace rcbr::signaling
