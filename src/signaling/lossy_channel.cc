#include "signaling/lossy_channel.h"

#include "util/error.h"

namespace rcbr::signaling {

LossyRenegotiator::LossyRenegotiator(PortController* port, std::uint64_t vci,
                                     double initial_rate_bps,
                                     const LossyChannelOptions& options,
                                     Rng* rng)
    : port_(port),
      vci_(vci),
      options_(options),
      rng_(rng),
      believed_(initial_rate_bps) {
  Require(port != nullptr, "LossyRenegotiator: null port");
  Require(rng != nullptr, "LossyRenegotiator: null rng");
  Require(options.cell_loss_probability >= 0 &&
              options.cell_loss_probability < 1,
          "LossyRenegotiator: loss probability must be in [0,1)");
  Require(options.resync_every_cells >= 0,
          "LossyRenegotiator: negative resync period");
  Require(initial_rate_bps >= 0, "LossyRenegotiator: negative rate");
}

bool LossyRenegotiator::Renegotiate(double new_rate_bps) {
  Require(new_rate_bps >= 0, "LossyRenegotiator: negative rate");
  const double delta = new_rate_bps - believed_;
  ++stats_.cells_sent;
  ++cells_since_resync_;
  bool accepted = true;
  if (rng_->Bernoulli(options_.cell_loss_probability)) {
    // The cell vanished; an unacknowledged scheme cannot tell a lost cell
    // from an accepted one, so the source's belief moves anyway.
    ++stats_.cells_lost;
    if constexpr (obs::kEnabled) {
      obs::Count(options_.recorder, "signaling.cells_lost");
      obs::Emit(options_.recorder, static_cast<double>(stats_.cells_sent),
                obs::EventKind::kRmCellLoss, vci_, {"delta_bps", delta},
                {"believed_bps", new_rate_bps});
    }
  } else {
    accepted = port_->Handle(RmCell::Delta(vci_, delta)).accepted;
  }
  if (accepted) believed_ = new_rate_bps;
  if (options_.resync_every_cells > 0 &&
      cells_since_resync_ >= options_.resync_every_cells) {
    Resync();
  }
  return accepted;
}

void LossyRenegotiator::Resync() {
  if constexpr (obs::kEnabled) {
    obs::Count(options_.recorder, "signaling.resyncs");
    obs::Emit(options_.recorder, static_cast<double>(stats_.cells_sent),
              obs::EventKind::kResync, vci_, {"believed_bps", believed_},
              {"drift_bps", DriftBps()});
  }
  port_->Handle(RmCell::Resync(vci_, believed_));
  ++stats_.resyncs_sent;
  cells_since_resync_ = 0;
}

double LossyRenegotiator::DriftBps() const {
  return port_->TrackedRate(vci_) - believed_;
}

}  // namespace rcbr::signaling
