#include "signaling/lossy_channel.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.h"

namespace rcbr::signaling {

void ValidateChannelOptions(const LossyChannelOptions& options) {
  Require(!std::isnan(options.cell_loss_probability),
          "LossyChannelOptions: loss probability is NaN");
  Require(options.cell_loss_probability >= 0 &&
              options.cell_loss_probability < 1,
          "LossyChannelOptions: loss probability must be in [0,1)");
  Require(options.resync_every_cells >= 0,
          "LossyChannelOptions: negative resync period");
}

LossyRenegotiator::LossyRenegotiator(PortController* port, std::uint64_t vci,
                                     double initial_rate_bps,
                                     const LossyChannelOptions& options,
                                     Rng* rng)
    : port_(port),
      vci_(vci),
      options_(options),
      rng_(rng),
      believed_(initial_rate_bps) {
  Require(port != nullptr, "LossyRenegotiator: null port");
  Require(rng != nullptr, "LossyRenegotiator: null rng");
  ValidateChannelOptions(options);
  Require(initial_rate_bps >= 0, "LossyRenegotiator: negative rate");
}

bool LossyRenegotiator::Renegotiate(double new_rate_bps, double now_seconds) {
  Require(new_rate_bps >= 0, "LossyRenegotiator: negative rate");
  const double delta = new_rate_bps - believed_;
  ++stats_.cells_sent;
  ++cells_since_resync_;
  bool accepted = true;
  if (rng_->Bernoulli(EffectiveLossProbability(options_))) {
    // The cell vanished; an unacknowledged scheme cannot tell a lost cell
    // from an accepted one, so the source's belief moves anyway.
    ++stats_.cells_lost;
    if constexpr (obs::kEnabled) {
      obs::Count(options_.recorder, "signaling.cells_lost");
      obs::Emit(options_.recorder, now_seconds,
                obs::EventKind::kRmCellLoss, vci_, {"delta_bps", delta},
                {"believed_bps", new_rate_bps});
    }
  } else {
    accepted = port_->Handle(RmCell::Delta(vci_, delta, rung_),
                           now_seconds)
                   .accepted;
  }
  if (accepted) believed_ = new_rate_bps;
  if (options_.resync_every_cells > 0 &&
      cells_since_resync_ >= options_.resync_every_cells) {
    Resync(now_seconds);
  }
  return accepted;
}

void LossyRenegotiator::Resync(double now_seconds) {
  if constexpr (obs::kEnabled) {
    obs::Count(options_.recorder, "signaling.resyncs");
    obs::Emit(options_.recorder, now_seconds, obs::EventKind::kResync, vci_,
              {"believed_bps", believed_}, {"drift_bps", DriftBps()});
  }
  port_->Handle(RmCell::Resync(vci_, believed_, rung_), now_seconds);
  ++stats_.resyncs_sent;
  cells_since_resync_ = 0;
}

double LossyRenegotiator::DriftBps() const {
  return port_->TrackedRate(vci_) - believed_;
}

LossyPathRenegotiator::LossyPathRenegotiator(
    SignalingPath* path, std::uint64_t vci, double initial_rate_bps,
    const LossyChannelOptions& options, Rng* rng)
    : path_(path),
      vci_(vci),
      options_(options),
      rng_(rng),
      believed_(initial_rate_bps) {
  Require(path != nullptr, "LossyPathRenegotiator: null path");
  Require(rng != nullptr, "LossyPathRenegotiator: null rng");
  ValidateChannelOptions(options);
  Require(initial_rate_bps >= 0, "LossyPathRenegotiator: negative rate");
}

bool LossyPathRenegotiator::Renegotiate(double new_rate_bps,
                                        double now_seconds) {
  Require(new_rate_bps >= 0, "LossyPathRenegotiator: negative rate");
  const double delta = new_rate_bps - believed_;
  ++stats_.cells_sent;
  ++cells_since_resync_;
  bool accepted = true;
  std::vector<CellVerdict> grants;
  grants.reserve(path_->hop_count());
  for (std::size_t k = 0; k < path_->hop_count(); ++k) {
    if (rng_->Bernoulli(EffectiveLossProbability(options_))) {
      // Lost in flight: hops 0..k-1 already applied the delta, the rest
      // never see it. The unacked source cannot tell, so no rollback —
      // the downstream hops drift until the next resync.
      ++stats_.cells_lost;
      if constexpr (obs::kEnabled) {
        obs::Count(options_.recorder, "signaling.cells_lost");
        obs::Emit(options_.recorder, now_seconds,
                  obs::EventKind::kRmCellLoss, vci_, {"delta_bps", delta},
                  {"hop", static_cast<double>(k)});
      }
      break;
    }
    const CellVerdict verdict =
        path_->hop(k)->Handle(RmCell::Delta(vci_, delta, rung_),
                              now_seconds);
    if (!verdict.accepted) {
      // All-or-nothing: roll the upstream grants back over the same lossy
      // channel; a lost rollback cell leaves that hop drifted.
      for (std::size_t j = 0; j < grants.size(); ++j) {
        if (rng_->Bernoulli(EffectiveLossProbability(options_))) {
          ++stats_.cells_lost;
          if constexpr (obs::kEnabled) {
            obs::Count(options_.recorder, "signaling.cells_lost");
            obs::Emit(options_.recorder, now_seconds,
                      obs::EventKind::kRmCellLoss, vci_,
                      {"delta_bps", -delta}, {"hop", static_cast<double>(j)});
          }
          continue;
        }
        path_->hop(j)->RollbackDelta(vci_, grants[j]);
      }
      accepted = false;
      break;
    }
    grants.push_back(verdict);
  }
  if (accepted) believed_ = new_rate_bps;
  if (options_.resync_every_cells > 0 &&
      cells_since_resync_ >= options_.resync_every_cells) {
    Resync(now_seconds);
  }
  return accepted;
}

void LossyPathRenegotiator::Resync(double now_seconds) {
  if constexpr (obs::kEnabled) {
    obs::Count(options_.recorder, "signaling.resyncs");
    obs::Emit(options_.recorder, now_seconds, obs::EventKind::kResync, vci_,
              {"believed_bps", believed_},
              {"max_drift_bps", MaxAbsDriftBps()});
  }
  path_->Resync(vci_, believed_, now_seconds, rung_);
  ++stats_.resyncs_sent;
  cells_since_resync_ = 0;
}

double LossyPathRenegotiator::DriftBps(std::size_t hop) const {
  return path_->hop(hop)->TrackedRate(vci_) - believed_;
}

double LossyPathRenegotiator::MaxAbsDriftBps() const {
  double worst = 0;
  for (std::size_t k = 0; k < path_->hop_count(); ++k) {
    worst = std::max(worst, std::abs(DriftBps(k)));
  }
  return worst;
}

}  // namespace rcbr::signaling
