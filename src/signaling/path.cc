#include "signaling/path.h"

#include "util/error.h"

namespace rcbr::signaling {

SignalingPath::SignalingPath(std::vector<PortController*> hops,
                             double per_hop_delay_s)
    : hops_(std::move(hops)), per_hop_delay_(per_hop_delay_s) {
  Require(!hops_.empty(), "SignalingPath: need at least one hop");
  Require(per_hop_delay_s >= 0, "SignalingPath: negative delay");
  for (PortController* hop : hops_) {
    Require(hop != nullptr, "SignalingPath: null hop");
  }
}

double SignalingPath::RoundTripSeconds() const {
  return 2.0 * per_hop_delay_ * static_cast<double>(hops_.size());
}

bool SignalingPath::SetupConnection(std::uint64_t vci, double rate_bps) {
  for (std::size_t k = 0; k < hops_.size(); ++k) {
    if (!hops_[k]->AdmitConnection(vci, rate_bps)) {
      for (std::size_t j = 0; j < k; ++j) {
        hops_[j]->ReleaseConnection(vci, rate_bps);
      }
      return false;
    }
  }
  return true;
}

void SignalingPath::TeardownConnection(std::uint64_t vci,
                                       double rate_bps_hint) {
  for (PortController* hop : hops_) {
    hop->ReleaseConnection(vci, rate_bps_hint);
  }
}

PathOutcome SignalingPath::RequestDelta(std::uint64_t vci, double delta_bps) {
  ++stats_.requests;
  PathOutcome outcome;
  for (std::size_t k = 0; k < hops_.size(); ++k) {
    const CellVerdict verdict = hops_[k]->Handle(RmCell::Delta(vci, delta_bps));
    if (!verdict.accepted) {
      // Roll back the grants made at the upstream hops.
      for (std::size_t j = 0; j < k; ++j) {
        hops_[j]->Handle(RmCell::Delta(vci, -delta_bps));
      }
      ++stats_.failures;
      outcome.accepted = false;
      outcome.bottleneck_hop = static_cast<int>(k);
      // Denial travels to hop k and back.
      outcome.round_trip_s =
          2.0 * per_hop_delay_ * static_cast<double>(k + 1);
      return outcome;
    }
  }
  outcome.accepted = true;
  outcome.round_trip_s = RoundTripSeconds();
  return outcome;
}

void SignalingPath::Resync(std::uint64_t vci, double absolute_rate_bps) {
  for (PortController* hop : hops_) {
    hop->Handle(RmCell::Resync(vci, absolute_rate_bps));
  }
}

}  // namespace rcbr::signaling
