#include "signaling/path.h"

#include "util/error.h"

namespace rcbr::signaling {

SignalingPath::SignalingPath(std::vector<PortController*> hops,
                             double per_hop_delay_s)
    : hops_(std::move(hops)), per_hop_delay_(per_hop_delay_s) {
  Require(!hops_.empty(), "SignalingPath: need at least one hop");
  Require(per_hop_delay_s >= 0, "SignalingPath: negative delay");
  for (PortController* hop : hops_) {
    Require(hop != nullptr, "SignalingPath: null hop");
  }
}

double SignalingPath::RoundTripSeconds() const {
  return 2.0 * per_hop_delay_ * static_cast<double>(hops_.size());
}

bool SignalingPath::SetupConnection(std::uint64_t vci, double rate_bps,
                                    std::uint32_t rung) {
  std::vector<double> before;
  before.reserve(hops_.size());
  for (std::size_t k = 0; k < hops_.size(); ++k) {
    before.push_back(hops_[k]->utilization_bps());
    if (!hops_[k]->AdmitConnection(vci, rate_bps, rung)) {
      for (std::size_t j = 0; j < k; ++j) {
        hops_[j]->RollbackAdmit(vci, before[j]);
      }
      return false;
    }
  }
  return true;
}

void SignalingPath::TeardownConnection(std::uint64_t vci,
                                       double rate_bps_hint) {
  for (PortController* hop : hops_) {
    hop->ReleaseConnection(vci, rate_bps_hint);
  }
}

PathOutcome SignalingPath::RequestDelta(std::uint64_t vci, double delta_bps,
                                        double now_seconds,
                                        std::uint32_t rung) {
  ++stats_.requests;
  PathOutcome outcome;
  std::vector<CellVerdict> grants;
  grants.reserve(hops_.size());
  for (std::size_t k = 0; k < hops_.size(); ++k) {
    const CellVerdict verdict =
        hops_[k]->Handle(RmCell::Delta(vci, delta_bps, rung), now_seconds);
    if (!verdict.accepted) {
      // Restore the upstream hops' pre-grant snapshots.
      for (std::size_t j = 0; j < k; ++j) {
        hops_[j]->RollbackDelta(vci, grants[j]);
      }
      ++stats_.failures;
      outcome.accepted = false;
      outcome.bottleneck_hop = static_cast<int>(k);
      // Denial travels to hop k and back.
      outcome.round_trip_s =
          2.0 * per_hop_delay_ * static_cast<double>(k + 1);
      return outcome;
    }
    grants.push_back(verdict);
  }
  outcome.accepted = true;
  outcome.round_trip_s = RoundTripSeconds();
  return outcome;
}

void SignalingPath::Resync(std::uint64_t vci, double absolute_rate_bps,
                           double now_seconds, std::uint32_t rung) {
  for (PortController* hop : hops_) {
    hop->Handle(RmCell::Resync(vci, absolute_rate_bps, rung), now_seconds);
  }
}

}  // namespace rcbr::signaling
