// Flat open-addressing VCI -> rate table for PortController.
//
// The per-VCI audit map is on the hot signaling path whenever connection
// tracking is on (every delta cell does one lookup, every setup/teardown
// an insert/erase). std::unordered_map pays a node allocation per VCI and
// a pointer chase per probe; at 10^6 concurrent calls that dominates the
// port controller. VciTable is a linear-probing table with backshift
// deletion: one flat array, no tombstones, no per-entry allocation.
//
// It deliberately has no iteration API — the controller only ever looks
// a single VCI up — so replacing the unordered_map cannot perturb any
// pinned ordering (the map was never iterated).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rcbr::signaling {

class VciTable {
 public:
  /// Pre-sizes the table for about `n` tracked connections.
  void Reserve(std::size_t n);

  /// Returns the rate slot for `vci`, inserting 0.0 if absent — the
  /// equivalent of unordered_map::operator[]. The reference is valid
  /// until the next Upsert/Reserve.
  double& Upsert(std::uint64_t vci);

  /// Returns the rate slot for `vci`, or nullptr if absent.
  const double* Find(std::uint64_t vci) const;

  /// Removes `vci` if present; returns whether it was.
  bool Erase(std::uint64_t vci);

  void Clear();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  // ~0 never collides with real VCIs: call ids start at 1 and a run
  // cannot mint 2^64-1 of them.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::uint64_t Mix(std::uint64_t x) {
    // splitmix64 finalizer: full avalanche, so sequential call ids
    // spread across the table instead of clustering.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t Slot(std::uint64_t vci) const {
    return static_cast<std::size_t>(Mix(vci)) & mask_;
  }

  void Grow(std::size_t min_capacity);

  std::vector<std::uint64_t> keys_;
  std::vector<double> rates_;
  std::size_t mask_ = 0;   // keys_.size() - 1 when allocated
  std::size_t size_ = 0;
};

}  // namespace rcbr::signaling
