#include "signaling/port_shards.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::signaling {
namespace {

constexpr std::size_t kDefaultShards = 8;

}  // namespace

PortShards::PortShards(const std::vector<double>& capacities_bps,
                       bool track_connections, obs::Recorder* recorder,
                       double admission_tolerance_bps,
                       std::size_t shard_count) {
  const std::size_t count = capacities_bps.size();
  Require(count > 0, "PortShards: no links");
  if (shard_count == 0) shard_count = std::min(count, kDefaultShards);
  shard_count = std::min(shard_count, count);
  shards_.resize(shard_count);
  locate_.resize(count);
  // Block partition: shard s owns links [s*count/S, (s+1)*count/S) — a
  // pure function of the topology, so layout never depends on traffic.
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t begin = s * count / shard_count;
    const std::size_t end = (s + 1) * count / shard_count;
    Shard& shard = shards_[s];
    // Exact reserve: controllers must never relocate (SignalingPath
    // borrows raw pointers into the shard for the whole run).
    shard.ports.reserve(end - begin);
    for (std::size_t link = begin; link < end; ++link) {
      shard.ports.emplace_back(capacities_bps[link], track_connections,
                               recorder, admission_tolerance_bps);
      locate_[link] = {static_cast<std::uint32_t>(s),
                       static_cast<std::uint32_t>(link - begin)};
    }
  }
}

void PortShards::ReserveConnections(std::size_t n) {
  for (Shard& shard : shards_) {
    for (PortController& port : shard.ports) port.ReserveConnections(n);
  }
}

}  // namespace rcbr::signaling
