#include "signaling/vci_table.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace rcbr::signaling {
namespace {

constexpr std::size_t kMinCapacity = 16;

std::size_t NextPow2(std::size_t n) {
  std::size_t p = kMinCapacity;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void VciTable::Reserve(std::size_t n) {
  // Keep load factor <= 0.5 so probe chains stay short.
  Grow(NextPow2(n * 2 + 1));
}

void VciTable::Grow(std::size_t min_capacity) {
  if (!keys_.empty() && keys_.size() >= min_capacity) return;
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<double> old_rates = std::move(rates_);
  const std::size_t capacity = NextPow2(min_capacity);
  keys_.assign(capacity, kEmpty);
  rates_.assign(capacity, 0.0);
  mask_ = capacity - 1;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmpty) continue;
    std::size_t slot = Slot(old_keys[i]);
    while (keys_[slot] != kEmpty) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[i];
    rates_[slot] = old_rates[i];
  }
}

double& VciTable::Upsert(std::uint64_t vci) {
  Require(vci != kEmpty, "VciTable: reserved VCI value");
  if (keys_.empty() || (size_ + 1) * 2 > keys_.size()) {
    Grow(keys_.empty() ? kMinCapacity : keys_.size() * 2);
  }
  std::size_t slot = Slot(vci);
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == vci) return rates_[slot];
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = vci;
  rates_[slot] = 0.0;
  ++size_;
  return rates_[slot];
}

const double* VciTable::Find(std::uint64_t vci) const {
  if (keys_.empty()) return nullptr;
  std::size_t slot = Slot(vci);
  while (keys_[slot] != kEmpty) {
    if (keys_[slot] == vci) return &rates_[slot];
    slot = (slot + 1) & mask_;
  }
  return nullptr;
}

bool VciTable::Erase(std::uint64_t vci) {
  if (keys_.empty()) return false;
  std::size_t slot = Slot(vci);
  while (keys_[slot] != vci) {
    if (keys_[slot] == kEmpty) return false;
    slot = (slot + 1) & mask_;
  }
  // Backshift deletion: pull displaced entries of the probe chain back
  // over the hole so lookups never need tombstones.
  std::size_t hole = slot;
  std::size_t probe = slot;
  while (true) {
    probe = (probe + 1) & mask_;
    if (keys_[probe] == kEmpty) break;
    const std::size_t home = Slot(keys_[probe]);
    // The entry at `probe` may move into the hole iff the hole lies in
    // its probe chain, i.e. cyclically between its home slot and probe.
    if (((hole - home) & mask_) < ((probe - home) & mask_)) {
      keys_[hole] = keys_[probe];
      rates_[hole] = rates_[probe];
      hole = probe;
    }
  }
  keys_[hole] = kEmpty;
  rates_[hole] = 0.0;
  --size_;
  return true;
}

void VciTable::Clear() {
  if (keys_.empty()) return;
  std::fill(keys_.begin(), keys_.end(), kEmpty);
  std::fill(rates_.begin(), rates_.end(), 0.0);
  size_ = 0;
}

}  // namespace rcbr::signaling
