// Per-port switch controller (Sec. III-B).
//
// "On receiving an RM cell, a switch controller determines the output port
// ... and the utilization and capacity of the output port in a second
// lookup. With this information, it checks if the current port utilization
// plus the rate difference is less than the port capacity."
//
// PortController is that O(1) decision: it keeps only aggregate state
// (capacity and utilization) — no per-VCI state, which is the paper's
// scaling argument. An optional per-connection audit map supports the
// drift-resync mechanism and tests.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/recorder.h"
#include "signaling/rm_cell.h"
#include "signaling/vci_table.h"

namespace rcbr::signaling {

struct PortStats {
  std::int64_t delta_accepted = 0;
  std::int64_t delta_denied = 0;
  std::int64_t resyncs = 0;
  std::int64_t crashes = 0;
};

class PortController {
 public:
  /// `track_connections` enables the per-VCI audit map used by resync.
  /// With a recorder, denied delta cells emit kRenegDeny events (time =
  /// the `now_seconds` the caller hands to Handle — one simulation-time
  /// axis across all layers; id = VCI) and "port.*" counters accumulate.
  /// `admission_tolerance_bps` is slack added to the capacity check
  /// (Handle and AdmitConnection accept up to capacity + tolerance); the
  /// network simulator uses 1e-9 to absorb reservation round-off.
  explicit PortController(double capacity_bps, bool track_connections = true,
                          obs::Recorder* recorder = nullptr,
                          double admission_tolerance_bps = 0);

  double capacity_bps() const { return capacity_; }
  double utilization_bps() const { return used_; }
  double available_bps() const { return capacity_ - used_; }
  const PortStats& stats() const { return stats_; }

  /// Processes one RM cell in O(1) (plus one hash lookup when tracking).
  /// Delta cells: a decrease always succeeds; an increase succeeds iff
  /// utilization + delta <= capacity (+ tolerance). Resync cells correct
  /// the aggregate utilization using the tracked per-connection rate and
  /// never fail. `now_seconds` is the simulation time, used to stamp
  /// trace events.
  CellVerdict Handle(const RmCell& cell, double now_seconds);

  /// Exactly undoes a just-granted delta cell — the compensating cell of
  /// an all-or-nothing multi-hop renegotiation (SignalingPath). Restores
  /// the pre-grant snapshots carried in `grant` instead of applying
  /// -delta, keeping the aggregate byte-identical to its pre-request
  /// value. Counted as an accepted delta cell, like the compensating
  /// cells it replaces.
  void RollbackDelta(std::uint64_t vci, const CellVerdict& grant);

  /// Registers a new connection at `rate_bps` (call setup, not
  /// renegotiation). Returns false and registers nothing if it does not
  /// fit. `rung > 0` marks the connection as admitted below its full ask
  /// and enqueues it on the upgrade queue.
  bool AdmitConnection(std::uint64_t vci, double rate_bps,
                       std::uint32_t rung = 0);

  /// Exactly undoes a just-granted AdmitConnection during an atomic
  /// multi-hop setup: restores the caller's pre-admit utilization
  /// snapshot and forgets the connection.
  void RollbackAdmit(std::uint64_t vci, double utilization_before_bps);

  /// Releases a connection (call teardown). With tracking enabled the
  /// released rate is looked up; otherwise the caller supplies it.
  void ReleaseConnection(std::uint64_t vci, double rate_bps_hint = 0);

  /// Injects aggregate-state corruption (lost RM cells) for drift tests.
  void CorruptUtilization(double delta_bps) { used_ += delta_bps; }

  /// Simulates a controller crash/restart with total state loss: the
  /// aggregate utilization and the per-VCI audit map reset to a cold
  /// start, as if the controller rebooted with empty tables. Until each
  /// source (or the surrounding simulator) repairs it with an
  /// absolute-rate resync cell (Sec. III-B), the port believes it is
  /// idle and over-admits.
  void CrashRestart();

  /// The rate this port believes `vci` has (tracking mode only; 0 if
  /// unknown).
  double TrackedRate(std::uint64_t vci) const;

  /// Pre-sizes the per-VCI audit table for about `n` concurrent
  /// connections (no-op when tracking is off). Capacity hint only.
  void ReserveConnections(std::size_t n);

  /// VCIs currently admitted below their full ask on this port, sorted
  /// ascending. Call ids are VCIs, so iterating this queue front-to-back
  /// is the deterministic "promote in call-id order" contract the engine
  /// relies on after a departure or rate decrease frees capacity.
  const std::vector<std::uint64_t>& upgrade_waiters() const {
    return waiters_;
  }
  bool IsUpgradeWaiter(std::uint64_t vci) const;

 private:
  /// Inserts/erases `vci` in the sorted waiter queue (idempotent).
  void SetWaiter(std::uint64_t vci, bool waiting);
  double capacity_;
  double used_ = 0;
  bool tracking_;
  double tolerance_;
  VciTable rates_;
  /// Sorted VCIs waiting for an upgrade (empty for scalar traffic; the
  /// fast path never touches it).
  std::vector<std::uint64_t> waiters_;
  PortStats stats_;
  obs::Recorder* obs_ = nullptr;
  obs::Counter* ctr_accepted_ = nullptr;
  obs::Counter* ctr_denied_ = nullptr;
  obs::Counter* ctr_resyncs_ = nullptr;
};

}  // namespace rcbr::signaling
