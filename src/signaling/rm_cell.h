// Lightweight renegotiation messages (Sec. III-B).
//
// "An RCBR source sets the explicit rate (ER) field in the RM cell to the
// difference between its old and new rates. ... We use a difference
// because this simplifies the computation at the switch controller, which
// need not keep track of the source's rate. This has the problem of
// parameter drift in case of RM cell loss. To overcome this, we can
// resynchronize rates by periodically sending an RM cell with the true
// explicit rate."
#pragma once

#include <cstdint>

namespace rcbr::signaling {

enum class CellKind : std::uint8_t {
  /// ER carries a rate *difference* (new - old), positive or negative.
  kDelta,
  /// ER carries the connection's true absolute rate (drift resync).
  kResync,
};

/// The subset of an ABR resource-management cell RCBR reuses.
struct RmCell {
  std::uint64_t vci = 0;
  CellKind kind = CellKind::kDelta;
  /// Explicit-rate field, bits per second (a difference for kDelta).
  double explicit_rate_bps = 0;

  static RmCell Delta(std::uint64_t vci, double delta_bps) {
    return {vci, CellKind::kDelta, delta_bps};
  }
  static RmCell Resync(std::uint64_t vci, double absolute_rate_bps) {
    return {vci, CellKind::kResync, absolute_rate_bps};
  }
};

/// The controller's verdict, written back into the ER field of the cell
/// returned to the source.
struct CellVerdict {
  bool accepted = false;
  /// Rate granted by this hop: the full delta when accepted, 0 otherwise
  /// (full-grant-or-nothing semantics, Sec. III-A1).
  double granted_delta_bps = 0;
  /// Pre-cell snapshot of the port's aggregate utilization and (in
  /// tracking mode) this VCI's rate. An all-or-nothing rollback restores
  /// these snapshots instead of applying a compensating -delta, because
  /// (x + d) - d need not equal x in floating point; the snapshot makes
  /// "denied at hop k restores hops 0..k-1 exactly" byte-true.
  double utilization_before_bps = 0;
  double tracked_rate_before_bps = 0;
};

}  // namespace rcbr::signaling
