// Lightweight renegotiation messages (Sec. III-B).
//
// "An RCBR source sets the explicit rate (ER) field in the RM cell to the
// difference between its old and new rates. ... We use a difference
// because this simplifies the computation at the switch controller, which
// need not keep track of the source's rate. This has the problem of
// parameter drift in case of RM cell loss. To overcome this, we can
// resynchronize rates by periodically sending an RM cell with the true
// explicit rate."
#pragma once

#include <cstdint>

namespace rcbr::signaling {

enum class CellKind : std::uint8_t {
  /// ER carries a rate *difference* (new - old), positive or negative.
  kDelta,
  /// ER carries the connection's true absolute rate (drift resync).
  kResync,
};

/// The subset of an ABR resource-management cell RCBR reuses.
struct RmCell {
  std::uint64_t vci = 0;
  CellKind kind = CellKind::kDelta;
  /// Explicit-rate field, bits per second (a difference for kDelta).
  double explicit_rate_bps = 0;
  /// Ladder rung the connection occupies once this cell applies (0 = the
  /// full ask; scalar contracts always send 0). A controller that grants
  /// a cell with rung > 0 enqueues the VCI on its upgrade queue; rung 0
  /// removes it. Riding the cell keeps the queue crash-consistent: the
  /// absolute-rate resync that repairs a restarted controller also
  /// re-registers the waiter.
  std::uint32_t rung = 0;

  static RmCell Delta(std::uint64_t vci, double delta_bps,
                      std::uint32_t rung = 0) {
    return {vci, CellKind::kDelta, delta_bps, rung};
  }
  static RmCell Resync(std::uint64_t vci, double absolute_rate_bps,
                       std::uint32_t rung = 0) {
    return {vci, CellKind::kResync, absolute_rate_bps, rung};
  }
};

/// The controller's verdict, written back into the ER field of the cell
/// returned to the source.
struct CellVerdict {
  bool accepted = false;
  /// Rate granted by this hop: the full delta when accepted, 0 otherwise
  /// (full-grant-or-nothing semantics, Sec. III-A1).
  double granted_delta_bps = 0;
  /// Pre-cell snapshot of the port's aggregate utilization and (in
  /// tracking mode) this VCI's rate. An all-or-nothing rollback restores
  /// these snapshots instead of applying a compensating -delta, because
  /// (x + d) - d need not equal x in floating point; the snapshot makes
  /// "denied at hop k restores hops 0..k-1 exactly" byte-true.
  double utilization_before_bps = 0;
  double tracked_rate_before_bps = 0;
  /// Pre-cell upgrade-queue membership of the VCI, so an all-or-nothing
  /// rollback also restores the queue exactly.
  bool waiter_before = false;
};

}  // namespace rcbr::signaling
