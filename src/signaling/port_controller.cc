#include "signaling/port_controller.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::signaling {

PortController::PortController(double capacity_bps, bool track_connections)
    : capacity_(capacity_bps), tracking_(track_connections) {
  Require(capacity_bps > 0, "PortController: capacity must be positive");
}

CellVerdict PortController::Handle(const RmCell& cell) {
  switch (cell.kind) {
    case CellKind::kDelta: {
      const double delta = cell.explicit_rate_bps;
      if (delta <= 0 || used_ + delta <= capacity_) {
        used_ = std::max(0.0, used_ + delta);
        ++stats_.delta_accepted;
        if (tracking_) rates_[cell.vci] += delta;
        return {true, delta};
      }
      ++stats_.delta_denied;
      return {false, 0};
    }
    case CellKind::kResync: {
      ++stats_.resyncs;
      if (tracking_) {
        const double believed = rates_[cell.vci];
        used_ = std::max(0.0, used_ + (cell.explicit_rate_bps - believed));
        rates_[cell.vci] = cell.explicit_rate_bps;
      }
      return {true, 0};
    }
  }
  return {false, 0};
}

bool PortController::AdmitConnection(std::uint64_t vci, double rate_bps) {
  Require(rate_bps >= 0, "PortController::AdmitConnection: negative rate");
  if (used_ + rate_bps > capacity_) return false;
  used_ += rate_bps;
  if (tracking_) rates_[vci] = rate_bps;
  return true;
}

void PortController::ReleaseConnection(std::uint64_t vci,
                                       double rate_bps_hint) {
  double rate = rate_bps_hint;
  if (tracking_) {
    auto it = rates_.find(vci);
    if (it != rates_.end()) {
      rate = it->second;
      rates_.erase(it);
    }
  }
  used_ = std::max(0.0, used_ - rate);
}

double PortController::TrackedRate(std::uint64_t vci) const {
  const auto it = rates_.find(vci);
  return it != rates_.end() ? it->second : 0.0;
}

}  // namespace rcbr::signaling
