#include "signaling/port_controller.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace rcbr::signaling {

PortController::PortController(double capacity_bps, bool track_connections,
                               obs::Recorder* recorder,
                               double admission_tolerance_bps)
    : capacity_(capacity_bps),
      tracking_(track_connections),
      tolerance_(admission_tolerance_bps),
      obs_(recorder) {
  Require(!std::isnan(capacity_bps), "PortController: capacity is NaN");
  Require(capacity_bps > 0, "PortController: capacity must be positive");
  Require(!std::isnan(admission_tolerance_bps),
          "PortController: tolerance is NaN");
  Require(admission_tolerance_bps >= 0,
          "PortController: negative tolerance");
  ctr_accepted_ = obs::FindCounter(obs_, "port.delta_accepted");
  ctr_denied_ = obs::FindCounter(obs_, "port.delta_denied");
  ctr_resyncs_ = obs::FindCounter(obs_, "port.resyncs");
}

CellVerdict PortController::Handle(const RmCell& cell, double now_seconds) {
  Require(!std::isnan(cell.explicit_rate_bps),
          "PortController::Handle: ER field is NaN");
  switch (cell.kind) {
    case CellKind::kDelta: {
      const double delta = cell.explicit_rate_bps;
      const double before = used_;
      const double tracked_before = tracking_ ? TrackedRate(cell.vci) : 0.0;
      const bool waiter_before = IsUpgradeWaiter(cell.vci);
      if (delta <= 0 || used_ + delta <= capacity_ + tolerance_) {
        used_ = std::max(0.0, used_ + delta);
        ++stats_.delta_accepted;
        if (ctr_accepted_ != nullptr) ctr_accepted_->Add();
        if (tracking_) rates_.Upsert(cell.vci) += delta;
        SetWaiter(cell.vci, cell.rung > 0);
        return {true, delta, before, tracked_before, waiter_before};
      }
      ++stats_.delta_denied;
      if (ctr_denied_ != nullptr) ctr_denied_->Add();
      obs::Emit(obs_, now_seconds, obs::EventKind::kRenegDeny, cell.vci,
                {"delta_bps", delta}, {"utilization_bps", used_},
                {"capacity_bps", capacity_});
      return {false, 0, before, tracked_before, waiter_before};
    }
    case CellKind::kResync: {
      ++stats_.resyncs;
      if (ctr_resyncs_ != nullptr) ctr_resyncs_->Add();
      if (tracking_) {
        double& tracked = rates_.Upsert(cell.vci);
        used_ = std::max(0.0, used_ + (cell.explicit_rate_bps - tracked));
        tracked = cell.explicit_rate_bps;
      }
      // The resync carries the rung, so repairing a crashed controller
      // also rebuilds its upgrade queue.
      SetWaiter(cell.vci, cell.rung > 0);
      return {true, 0, used_, 0};
    }
  }
  return {false, 0, used_, 0};
}

void PortController::RollbackDelta(std::uint64_t vci,
                                   const CellVerdict& grant) {
  used_ = grant.utilization_before_bps;
  ++stats_.delta_accepted;
  if (ctr_accepted_ != nullptr) ctr_accepted_->Add();
  if (tracking_) rates_.Upsert(vci) = grant.tracked_rate_before_bps;
  SetWaiter(vci, grant.waiter_before);
}

void PortController::CrashRestart() {
  used_ = 0;
  rates_.Clear();
  waiters_.clear();
  ++stats_.crashes;
  obs::Count(obs_, "port.crashes");
}

bool PortController::AdmitConnection(std::uint64_t vci, double rate_bps,
                                     std::uint32_t rung) {
  Require(rate_bps >= 0, "PortController::AdmitConnection: negative rate");
  if (used_ + rate_bps > capacity_ + tolerance_) return false;
  used_ += rate_bps;
  if (tracking_) rates_.Upsert(vci) = rate_bps;
  if (rung > 0) SetWaiter(vci, true);
  return true;
}

void PortController::RollbackAdmit(std::uint64_t vci,
                                   double utilization_before_bps) {
  used_ = utilization_before_bps;
  if (tracking_) rates_.Erase(vci);
  // A connection cannot have been a waiter before its own setup, so
  // "remove" restores the pre-admit queue exactly.
  SetWaiter(vci, false);
}

void PortController::ReleaseConnection(std::uint64_t vci,
                                       double rate_bps_hint) {
  double rate = rate_bps_hint;
  if (tracking_) {
    const double* tracked = rates_.Find(vci);
    if (tracked != nullptr) {
      rate = *tracked;
      rates_.Erase(vci);
    }
  }
  used_ = std::max(0.0, used_ - rate);
  SetWaiter(vci, false);
}

bool PortController::IsUpgradeWaiter(std::uint64_t vci) const {
  if (waiters_.empty()) return false;  // scalar fast path
  return std::binary_search(waiters_.begin(), waiters_.end(), vci);
}

void PortController::SetWaiter(std::uint64_t vci, bool waiting) {
  if (waiters_.empty() && !waiting) return;  // scalar fast path
  const auto it = std::lower_bound(waiters_.begin(), waiters_.end(), vci);
  const bool present = it != waiters_.end() && *it == vci;
  if (waiting && !present) {
    waiters_.insert(it, vci);
  } else if (!waiting && present) {
    waiters_.erase(it);
  }
}

double PortController::TrackedRate(std::uint64_t vci) const {
  const double* tracked = rates_.Find(vci);
  return tracked != nullptr ? *tracked : 0.0;
}

void PortController::ReserveConnections(std::size_t n) {
  if (tracking_ && n > 0) rates_.Reserve(n);
}

}  // namespace rcbr::signaling
