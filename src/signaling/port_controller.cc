#include "signaling/port_controller.h"

#include <algorithm>

#include "util/error.h"

namespace rcbr::signaling {

PortController::PortController(double capacity_bps, bool track_connections,
                               obs::Recorder* recorder)
    : capacity_(capacity_bps), tracking_(track_connections), obs_(recorder) {
  Require(capacity_bps > 0, "PortController: capacity must be positive");
  ctr_accepted_ = obs::FindCounter(obs_, "port.delta_accepted");
  ctr_denied_ = obs::FindCounter(obs_, "port.delta_denied");
  ctr_resyncs_ = obs::FindCounter(obs_, "port.resyncs");
}

CellVerdict PortController::Handle(const RmCell& cell) {
  ++cells_handled_;
  switch (cell.kind) {
    case CellKind::kDelta: {
      const double delta = cell.explicit_rate_bps;
      if (delta <= 0 || used_ + delta <= capacity_) {
        used_ = std::max(0.0, used_ + delta);
        ++stats_.delta_accepted;
        if (ctr_accepted_ != nullptr) ctr_accepted_->Add();
        if (tracking_) rates_[cell.vci] += delta;
        return {true, delta};
      }
      ++stats_.delta_denied;
      if (ctr_denied_ != nullptr) ctr_denied_->Add();
      obs::Emit(obs_, static_cast<double>(cells_handled_),
                obs::EventKind::kRenegDeny, cell.vci,
                {"delta_bps", delta}, {"utilization_bps", used_},
                {"capacity_bps", capacity_});
      return {false, 0};
    }
    case CellKind::kResync: {
      ++stats_.resyncs;
      if (ctr_resyncs_ != nullptr) ctr_resyncs_->Add();
      if (tracking_) {
        const double believed = rates_[cell.vci];
        used_ = std::max(0.0, used_ + (cell.explicit_rate_bps - believed));
        rates_[cell.vci] = cell.explicit_rate_bps;
      }
      return {true, 0};
    }
  }
  return {false, 0};
}

bool PortController::AdmitConnection(std::uint64_t vci, double rate_bps) {
  Require(rate_bps >= 0, "PortController::AdmitConnection: negative rate");
  if (used_ + rate_bps > capacity_) return false;
  used_ += rate_bps;
  if (tracking_) rates_[vci] = rate_bps;
  return true;
}

void PortController::ReleaseConnection(std::uint64_t vci,
                                       double rate_bps_hint) {
  double rate = rate_bps_hint;
  if (tracking_) {
    auto it = rates_.find(vci);
    if (it != rates_.end()) {
      rate = it->second;
      rates_.erase(it);
    }
  }
  used_ = std::max(0.0, used_ - rate);
}

double PortController::TrackedRate(std::uint64_t vci) const {
  const auto it = rates_.find(vci);
  return it != rates_.end() ? it->second : 0.0;
}

}  // namespace rcbr::signaling
