#!/usr/bin/env python3
"""Pin the multi-resolution ladder's admission advantage.

Reads a BENCH_fig_downgrade_ladder.json produced by
`bench/fig_downgrade_ladder` and checks, at every swept load, that the
ladder-aware MBAC (depth >= 2) never blocks more than the plain scalar
Chernoff MBAC (the depth-1 row of the same load — pinned byte-identical
to the scalar contract), and that at the deepest ladder under the
heaviest load the ladder strictly improves both blocking and delivered
utility. A depth-2+ row that blocks *more* than its scalar baseline
means the downgrade path stopped admitting, i.e. the ladder refactor
regressed into a no-op or worse.

Usage: check_downgrade_utility.py BENCH_fig_downgrade_ladder.json
"""
import json
import pathlib
import sys


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench = json.loads(pathlib.Path(argv[1]).read_text())

    points = {}
    for p in bench["points"]:
        key = (p["parameters"]["load"], p["parameters"]["depth"])
        points[key] = p["metrics"]
    loads = sorted({load for load, _ in points})
    depths = sorted({depth for _, depth in points})
    if 1 not in depths or len(depths) < 2:
        print("need a depth-1 baseline and at least one deeper ladder",
              file=sys.stderr)
        return 2

    failures = 0
    for load in loads:
        base = points[(load, 1)]
        for depth in depths:
            if depth == 1:
                continue
            got = points[(load, depth)]
            ok = got["blocking"] <= base["blocking"]
            print(
                f"load={load:g} depth={depth:g}: blocking "
                f"{got['blocking']:.6f} vs plain {base['blocking']:.6f}, "
                f"utility/s {got['utility_per_s']:.4f} vs "
                f"{base['utility_per_s']:.4f} "
                f"{'ok' if ok else 'FAIL'}"
            )
            if not ok:
                failures += 1

    # Under the heaviest saturation the deepest ladder must strictly win
    # on both axes, otherwise the figure no longer shows the effect.
    top = points[(loads[-1], depths[-1])]
    base = points[(loads[-1], 1)]
    if not (top["blocking"] < base["blocking"]
            and top["utility_per_s"] > base["utility_per_s"]):
        print(
            f"FAIL: deepest ladder at load {loads[-1]:g} does not strictly "
            f"beat the scalar scheme (blocking {top['blocking']:.6f} vs "
            f"{base['blocking']:.6f}, utility/s {top['utility_per_s']:.4f} "
            f"vs {base['utility_per_s']:.4f})",
            file=sys.stderr,
        )
        failures += 1

    if failures:
        print(f"{failures} ladder point(s) regressed", file=sys.stderr)
        return 1
    print(f"ladder advantage holds at all {len(loads)} load(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
