#!/usr/bin/env python3
"""Guard the observability layer's hot-path overhead.

bench/macro_capacity runs every (calls, tracked) size twice in --quick
mode: obs=0 (no recorder) and obs=1 (the point recorder wired into the
engine, so counters, spans, and flight hooks are live). This check pairs
those points from one BENCH_macro_capacity.json and fails when tracked
throughput falls more than the budgeted fraction below untracked.

The budget lives in tools/obs_overhead_ceiling.json: `max_overhead` is
the design target (instrumented runs keep >= 85% of the uninstrumented
event rate) and `noise_slack` absorbs single-run jitter on shared CI
runners — the check compares one run against one run, not medians.

Usage: check_obs_overhead.py BENCH_macro_capacity.json [ceiling.json]
"""
import json
import pathlib
import sys


def point_key(params):
    return (params["calls"], params["tracked"])


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = pathlib.Path(argv[1])
    ceiling_path = (
        pathlib.Path(argv[2])
        if len(argv) == 3
        else pathlib.Path(__file__).parent / "obs_overhead_ceiling.json"
    )
    bench = json.loads(bench_path.read_text())
    ceiling = json.loads(ceiling_path.read_text())
    allowed = ceiling["max_overhead"] + ceiling["noise_slack"]

    untracked = {}
    tracked = {}
    for point in bench["points"]:
        params = point["parameters"]
        if params.get("obs", 0) == 0:
            untracked[point_key(params)] = point["metrics"]
        else:
            tracked[point_key(params)] = point["metrics"]

    failures = []
    checked = 0
    for key, with_obs in sorted(tracked.items()):
        base = untracked.get(key)
        if base is None:
            print(f"calls={key[0]:.0f} tracked={key[1]:.0f}: no obs=0 "
                  "companion point, skipped")
            continue
        checked += 1
        overhead = 1.0 - with_obs["events_per_sec"] / base["events_per_sec"]
        status = "ok" if overhead <= allowed else "FAIL"
        print(
            f"calls={key[0]:>9.0f} tracked={key[1]:.0f}: "
            f"{base['events_per_sec']:>12.0f} -> "
            f"{with_obs['events_per_sec']:>12.0f} events/s "
            f"(overhead {overhead * 100:+.1f}%, "
            f"allowed {allowed * 100:.0f}%) {status}"
        )
        if overhead > allowed:
            failures.append(key)
    if checked == 0:
        print("no obs=0/obs=1 pairs found in the benchmark output",
              file=sys.stderr)
        return 2
    if failures:
        print(f"{len(failures)} pair(s) over the overhead budget",
              file=sys.stderr)
        return 1
    print(f"all {checked} pair(s) within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
