#!/usr/bin/env python3
"""Render one experiment run as a markdown report.

Collects the artifacts a harness drops for a single experiment —
BENCH_<name>.json (required) plus the optional TRACE_<name>.jsonl,
TS_<name>.jsonl, and FLIGHT_<name>.jsonl from the same directory — and
renders them into a single human-readable markdown document: the results
table, the merged counters/gauges snapshot, span-latency quantiles,
per-series time-series sparklines, flight-recorder postmortems, and the
wall-clock phase profile when present. Stdlib only.

Usage: rcbr_report.py NAME [--dir D] [--out FILE]
       rcbr_report.py fig_fault_sweep --dir runs/ --out report.md
"""
import argparse
import json
import pathlib
import sys

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values, width=40):
    """Downsample `values` to `width` buckets of block characters."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket means keep bursts visible without exceeding the width.
        step = len(values) / width
        values = [
            sum(chunk) / len(chunk)
            for chunk in (
                values[int(i * step): max(int((i + 1) * step), int(i * step) + 1)]
                for i in range(width)
            )
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(values)
    return "".join(
        SPARK_CHARS[min(int((v - lo) / span * len(SPARK_CHARS)), len(SPARK_CHARS) - 1)]
        for v in values
    )


def fmt(value):
    """Compact numeric formatting for table cells."""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def table(header, rows):
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return lines


def read_jsonl(path):
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines() if line]


def render_results(bench, out):
    out.append(f"# {bench['experiment']}")
    out.append("")
    for note in bench.get("notes", []):
        out.append(f"> {note}")
    out.append("")
    meta = [f"seed {bench['base_seed']}"]
    if "threads" in bench:
        meta.append(f"{bench['threads']} thread(s)")
    if "total_seconds" in bench:
        meta.append(f"{bench['total_seconds']:.3f} s total")
    out.append("Run: " + ", ".join(meta) + ".")
    out.append("")
    out.append("## Results")
    out.append("")
    if "points" in bench:
        columns = bench["parameters"] + bench["metrics"]
        rows = [p["parameters"] + p["metrics_list"]
                for p in normalize_points(bench)]
        out.extend(table(columns, rows))
    else:
        # Single-run shape (e.g. the chaos daemon drill): a flat
        # results map instead of a parameter sweep.
        results = bench.get("results", {})
        out.extend(table(["metric", "value"], sorted(results.items())))
    out.append("")


def normalize_points(bench):
    """Points carry metrics either as a list (spec order) or a name map."""
    points = []
    for point in bench["points"]:
        metrics = point["metrics"]
        if isinstance(metrics, dict):
            metrics = [metrics[name] for name in bench["metrics"]]
        points.append({"parameters": point["parameters"]
                       if isinstance(point["parameters"], list)
                       else [point["parameters"][name]
                             for name in bench["parameters"]],
                       "metrics_list": metrics})
    return points


def render_snapshot(bench, out):
    obs = bench.get("obs_metrics", {})
    counters = obs.get("counters", {})
    gauges = obs.get("gauges", {})
    if not counters and not gauges:
        return
    out.append("## Metrics snapshot")
    out.append("")
    if counters:
        out.extend(table(["counter", "value"], sorted(counters.items())))
        out.append("")
    if gauges:
        rows = [
            (name, g["count"], fmt(g["min"]), fmt(g["max"]), fmt(g["last"]))
            for name, g in sorted(gauges.items())
        ]
        out.extend(table(["gauge", "n", "min", "max", "last"], rows))
        out.append("")


def render_spans(bench, out):
    spans = bench.get("obs_metrics", {}).get("spans", {})
    if not spans:
        return
    out.append("## Spans")
    out.append("")
    out.append("Log-bucketed sim-time histograms (quantiles are bucket "
               "upper bounds, ~12.5% relative error).")
    out.append("")
    rows = [
        (name, s["seen"], s["count"], fmt(s["min"]), fmt(s["p50"]),
         fmt(s["p90"]), fmt(s["p99"]), fmt(s["max"]))
        for name, s in sorted(spans.items())
    ]
    out.extend(table(
        ["span", "seen", "recorded", "min", "p50", "p90", "p99", "max"],
        rows))
    out.append("")


def render_series(ts_lines, out):
    if not ts_lines:
        return
    out.append("## Time series")
    out.append("")
    out.append("Per-window means over sim time (one sparkline per "
               "point/series).")
    out.append("")
    grouped = {}
    for line in ts_lines:
        key = (line["point"], line["series"])
        grouped.setdefault(key, []).append(line)
    rows = []
    for (point, series), windows in sorted(grouped.items()):
        means = [w["sum"] / w["n"] if w["n"] else 0.0 for w in windows]
        rows.append((point, series, len(windows),
                     fmt(min(w["min"] for w in windows)),
                     fmt(max(w["max"] for w in windows)),
                     sparkline(means)))
    out.extend(table(
        ["point", "series", "windows", "min", "max", "trend"], rows))
    out.append("")


def render_flight(flight_lines, out):
    if not flight_lines:
        return
    out.append("## Flight recorder")
    out.append("")
    dumps = [l for l in flight_lines if "trigger" in l]
    suppressed = [l for l in flight_lines
                  if l.get("event") == "flight_dumps_suppressed"]
    if not dumps and not suppressed:
        out.append("No postmortem triggers fired.")
        out.append("")
        return
    rows = [
        (d["point"], d["dump"], d["trigger"], fmt(d["t"]), d["id"],
         d["window"])
        for d in dumps
    ]
    out.extend(table(
        ["point", "dump", "trigger", "t", "id", "events"], rows))
    for s in suppressed:
        out.append("")
        out.append(f"Point {s['point']}: {s['suppressed']} further "
                   "trigger(s) suppressed after the dump cap.")
    out.append("")


def render_trace(trace_lines, out):
    if not trace_lines:
        return
    out.append("## Trace")
    out.append("")
    by_kind = {}
    truncated = 0
    for line in trace_lines:
        if "trace_truncated" in line.get("event", ""):
            truncated += 1
            continue
        by_kind[line["event"]] = by_kind.get(line["event"], 0) + 1
    out.extend(table(["event", "count"], sorted(by_kind.items())))
    if truncated:
        out.append("")
        out.append(f"{truncated} point(s) overflowed their trace buffer "
                   "(oldest-first retention; see obs.trace_dropped_events).")
    out.append("")


def render_session(bench, out):
    """Session-span sections for daemon runs (the chaos drill's report
    embeds the client's slot-stamped session event log)."""
    events = bench.get("session", [])
    if not events:
        return
    out.append("## Session")
    out.append("")
    counts = {}
    for e in events:
        counts[e["kind"]] = counts.get(e["kind"], 0) + 1
    out.extend(table(["event", "count"], sorted(counts.items())))
    out.append("")
    # The lifecycle spans: contiguous slot ranges between connection
    # state changes, so a reader sees where the session was healthy,
    # suspect, or reconnecting on the deterministic slot axis.
    span_kinds = {"connect", "link_suspect", "reconnect", "reconnect_failed",
                  "desync", "drain", "bye", "give_up", "protocol_error"}
    rows = []
    last = None
    for e in events:
        if e["kind"] not in span_kinds:
            continue
        if last is not None:
            rows.append((last["slot"], e["slot"], e["slot"] - last["slot"],
                         last["kind"]))
        last = e
    if last is not None:
        end = events[-1]["slot"]
        rows.append((last["slot"], end, end - last["slot"], last["kind"]))
    if rows:
        out.append("### Lifecycle spans")
        out.append("")
        out.extend(table(["from_slot", "to_slot", "slots", "state_entered"],
                         rows))
        out.append("")
    rates = [e["rate_bps"] for e in events if e["kind"] == "grant"]
    if rates:
        out.append(f"Granted-rate walk ({len(rates)} grants): "
                   f"`{sparkline(rates)}`")
        out.append("")


def render_profile(bench, out):
    profile = bench.get("profile", {})
    if not profile:
        return
    out.append("## Wall-clock profile")
    out.append("")
    rows = [
        (name, p.get("calls", ""), fmt(p.get("total_s", "")),
         fmt(p.get("max_s", "")))
        for name, p in sorted(profile.items())
    ]
    out.extend(table(["phase", "calls", "total_s", "max_s"], rows))
    out.append("")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("name", help="experiment name (BENCH_<name>.json stem)")
    parser.add_argument("--dir", default=".", help="artifact directory")
    parser.add_argument("--out", default="", help="write here instead of stdout")
    args = parser.parse_args(argv[1:])

    directory = pathlib.Path(args.dir)
    bench_path = directory / f"BENCH_{args.name}.json"
    if not bench_path.exists():
        print(f"rcbr_report: {bench_path} not found", file=sys.stderr)
        return 2
    bench = json.loads(bench_path.read_text())

    out = []
    render_results(bench, out)
    render_session(bench, out)
    render_snapshot(bench, out)
    render_spans(bench, out)
    render_series(read_jsonl(directory / f"TS_{args.name}.jsonl"), out)
    render_flight(read_jsonl(directory / f"FLIGHT_{args.name}.jsonl"), out)
    render_trace(read_jsonl(directory / f"TRACE_{args.name}.jsonl"), out)
    render_profile(bench, out)

    text = "\n".join(out).rstrip() + "\n"
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
