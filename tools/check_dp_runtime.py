#!/usr/bin/env python3
"""Guard the DP scheduler's runtime and optimality against regressions.

Compares a BENCH_tab1_dp_runtime.json produced by `bench/tab1_dp_runtime`
against the checked-in ceilings (tools/dp_runtime_floor.json) and fails
if any matching K's wall-clock exceeds its ceiling, or if the optimal
cost found drifts above its pinned bound (a fast DP that prunes valid
transitions is not a speedup).

The ceilings are deliberately loose — tens of times above what dedicated
hardware measures — because CI runners are slow and noisy; the check is
meant to catch a complexity-class slip in the trellis (frontier merge,
arena append, streaming recompute), not a few percent of jitter.

Usage: check_dp_runtime.py BENCH_tab1_dp_runtime.json [floor.json]
"""
import json
import pathlib
import sys


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = pathlib.Path(argv[1])
    floor_path = (
        pathlib.Path(argv[2])
        if len(argv) == 3
        else pathlib.Path(__file__).parent / "dp_runtime_floor.json"
    )
    bench = json.loads(bench_path.read_text())
    floors = json.loads(floor_path.read_text())

    measured = {p["parameters"]["K"]: p["metrics"] for p in bench["points"]}
    failures = []
    checked = 0
    for entry in floors["ceilings"]:
        k = entry["K"]
        if k not in measured:
            continue  # --quick runs only a subset of the full sweep
        checked += 1
        metrics = measured[k]
        seconds = metrics["seconds"]
        status = "ok" if seconds <= entry["max_seconds"] else "FAIL"
        print(
            f"K={k:>4.0f}: {seconds:8.3f} s "
            f"(ceiling {entry['max_seconds']:.1f} s) {status}"
        )
        if seconds > entry["max_seconds"]:
            failures.append(k)
        # Optimality pin: the cost must not creep above the known optimum
        # (small upward slack absorbs FP noise across toolchains).
        if "max_cost" in entry and metrics["cost"] > entry["max_cost"]:
            print(
                f"  FAIL: cost {metrics['cost']:.1f} above pinned optimum "
                f"bound {entry['max_cost']:.1f}"
            )
            failures.append(k)
    if checked == 0:
        print("no ceiling points matched the benchmark output", file=sys.stderr)
        return 2
    if failures:
        print(f"{len(failures)} DP runtime point(s) regressed", file=sys.stderr)
        return 1
    print(f"all {checked} matched point(s) within ceilings")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
