#!/usr/bin/env python3
"""Guard the engine's event throughput against regressions.

Compares a BENCH_macro_capacity.json produced by `bench/macro_capacity`
against the checked-in floor (tools/macro_capacity_floor.json) and fails
if any matching point's events_per_sec drops more than the allowed margin
below its floor.

The floors are deliberately conservative — well under what dedicated
hardware sustains — because CI runners are slow and noisy; the check is
meant to catch an accidental O(log n) (or worse) slip in the event queue
or call store, not a few percent of jitter.

Usage: check_macro_capacity.py BENCH_macro_capacity.json [floor.json]
"""
import json
import pathlib
import sys

ALLOWED_REGRESSION = 0.20  # fail below floor * (1 - this)


def point_key(params):
    # "obs" was added after the first floors were recorded; older floor
    # files (and pre-obs bench outputs) imply obs=0.
    return (params["calls"], params["tracked"], params.get("obs", 0))


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = pathlib.Path(argv[1])
    floor_path = (
        pathlib.Path(argv[2])
        if len(argv) == 3
        else pathlib.Path(__file__).parent / "macro_capacity_floor.json"
    )
    bench = json.loads(bench_path.read_text())
    floors = json.loads(floor_path.read_text())

    measured = {
        point_key(p["parameters"]): p["metrics"] for p in bench["points"]
    }
    failures = []
    checked = 0
    for entry in floors["floors"]:
        key = (entry["calls"], entry["tracked"], entry.get("obs", 0))
        if key not in measured:
            continue  # --quick runs only a subset of the full sweep
        checked += 1
        metrics = measured[key]
        got = metrics["events_per_sec"]
        limit = entry["events_per_sec"] * (1.0 - ALLOWED_REGRESSION)
        status = "ok" if got >= limit else "FAIL"
        print(
            f"calls={key[0]:>9.0f} tracked={key[1]:.0f} obs={key[2]:.0f}: "
            f"{got:>12.0f} events/s (floor {entry['events_per_sec']:.0f}, "
            f"limit {limit:.0f}) {status}"
        )
        if got < limit:
            failures.append(key)
        # Sanity: the sweep's scale claim, not just its speed. The 10^6
        # point must actually have driven 10^8+ events.
        if "min_events" in entry and metrics["events"] < entry["min_events"]:
            print(
                f"  FAIL: only {metrics['events']:.0f} events "
                f"(expected >= {entry['min_events']:.0f})"
            )
            failures.append(key)
    if checked == 0:
        print("no floor points matched the benchmark output", file=sys.stderr)
        return 2
    if failures:
        print(f"{len(failures)} capacity point(s) regressed", file=sys.stderr)
        return 1
    print(f"all {checked} matched point(s) above floor")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
